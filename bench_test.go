package rushprobe

// The benchmark suite regenerates every data-bearing table and figure of
// the paper, one benchmark per figure (IDs from ExperimentIDs):
//
//	BenchmarkFig3DemandProfile          Fig. 3 analog (demand unevenness)
//	BenchmarkFig4MotivationSurface      Fig. 4 (PhiAT/PhiRH surface)
//	BenchmarkFig5Analysis               Fig. 5 (analysis, PhiMax=Tepoch/1000)
//	BenchmarkFig6Analysis               Fig. 6 (analysis, PhiMax=Tepoch/100)
//	BenchmarkFig7Simulation             Fig. 7 (simulation, PhiMax=Tepoch/1000)
//	BenchmarkFig8Simulation             Fig. 8 (simulation, PhiMax=Tepoch/100)
//
// plus the extension/ablation experiments from the paper's discussion:
//
//	BenchmarkExtRushHourLearning        §VII.B learning bootstrap
//	BenchmarkExtSeasonalShift           §VII.B adaptive tracking
//	BenchmarkExtFleet                   closed-loop fleet co-simulation vs oracle
//	BenchmarkAblationDutyCycleSensitivity  §VI.C drh sensitivity
//	BenchmarkAblationExponentialContacts   footnote 1
//	BenchmarkAblationBeaconLoss         beacon-loss robustness
//
// Each figure benchmark prints the regenerated series once (the paper's
// rows) and asserts the qualitative shape in its own body.
// Micro-benchmarks of the core components follow at the bottom.

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"
)

// printOnce prints each experiment's tables at most once per process, so
// repeated benchmark iterations do not flood the output.
var printOnce sync.Map

func runAndPrint(b *testing.B, id string, seed uint64) []*Table {
	b.Helper()
	tables, err := RunExperiment(id, seed)
	if err != nil {
		b.Fatalf("experiment %s: %v", id, err)
	}
	if _, loaded := printOnce.LoadOrStore(id, true); !loaded {
		fmt.Printf("\n===== %s =====\n", id)
		for _, t := range tables {
			fmt.Print(t.Text())
		}
	}
	return tables
}

func BenchmarkFig3DemandProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "fig3", 1)
		rows := tables[0].Rows
		if len(rows) != 24 {
			b.Fatalf("fig3 rows = %d", len(rows))
		}
		// Shape: bimodal — morning and evening bins dominate midday.
		if rows[7][1] < 2*rows[12][1] || rows[17][1] < 2*rows[12][1] {
			b.Fatal("fig3 lost its rush-hour peaks")
		}
	}
}

func BenchmarkFig4MotivationSurface(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "fig4", 1)
		maxGain := 0.0
		for _, row := range tables[0].Rows {
			maxGain = math.Max(maxGain, row[2])
		}
		// Shape: gain peaks slightly above 10x at (0.05, 20), as in the
		// paper's surface (axis up to 11).
		if maxGain < 10 || maxGain > 11 {
			b.Fatalf("fig4 max gain = %v, want ~10.3", maxGain)
		}
		b.ReportMetric(maxGain, "max_gain")
	}
}

func BenchmarkFig5Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "fig5", 1)
		zeta, _, rho := tables[0], tables[1], tables[2]
		for _, row := range zeta.Rows {
			// AT flat at 8.8; OPT == RH (they coincide under the tight
			// budget, the paper's headline for Fig. 5).
			if math.Abs(row[1]-8.8) > 0.05 {
				b.Fatalf("fig5 AT zeta = %v, want 8.8", row[1])
			}
			if math.Abs(row[2]-row[3]) > 0.2 {
				b.Fatalf("fig5 OPT %v != RH %v", row[2], row[3])
			}
		}
		last := zeta.Rows[len(zeta.Rows)-1]
		if math.Abs(last[3]-28.8) > 0.1 {
			b.Fatalf("fig5 RH budget cap = %v, want 28.8", last[3])
		}
		b.ReportMetric(rho.Rows[0][1], "rho_at")
		b.ReportMetric(rho.Rows[0][3], "rho_rh")
	}
}

func BenchmarkFig6Analysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "fig6", 1)
		zeta, phi := tables[0], tables[1]
		for _, row := range zeta.Rows {
			target := row[0]
			// AT and OPT meet every target under the loose budget.
			if math.Abs(row[1]-target) > 0.1 || math.Abs(row[2]-target) > 0.2 {
				b.Fatalf("fig6 AT/OPT at target %v: %v, %v", target, row[1], row[2])
			}
			// RH caps at its 48 s rush-hour ceiling.
			want := math.Min(target, 48)
			if math.Abs(row[3]-want) > 0.1 {
				b.Fatalf("fig6 RH zeta = %v at target %v, want %v", row[3], target, want)
			}
		}
		// Energy ordering at 56 s: RH(ceiling) < OPT < AT.
		last := phi.Rows[len(phi.Rows)-1]
		if !(last[3] < last[2] && last[2] < last[1]) {
			b.Fatalf("fig6 phi ordering at 56s: AT=%v OPT=%v RH=%v", last[1], last[2], last[3])
		}
		b.ReportMetric(last[2], "phi_opt_56")
	}
}

func BenchmarkFig7Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "fig7", 1)
		zeta, _, rho := tables[0], tables[1], tables[2]
		for _, row := range zeta.Rows {
			// Simulation has variance; the paper notes the analysis
			// conclusions still hold. AT stays near 8.8 and far below
			// RH; RH stays within the budget cap's neighborhood.
			if row[1] > 12 {
				b.Fatalf("fig7 AT zeta = %v, want ~8.8", row[1])
			}
			if row[3] > 33 {
				b.Fatalf("fig7 RH zeta = %v, beyond budget cap", row[3])
			}
			if row[3] < row[1] {
				b.Fatalf("fig7 RH %v must beat AT %v", row[3], row[1])
			}
		}
		// rho separation: RH ~3 vs AT ~9.8.
		for _, row := range rho.Rows {
			if !(row[3] < row[1]*0.6) {
				b.Fatalf("fig7 rho: RH %v should be well below AT %v", row[3], row[1])
			}
		}
		b.ReportMetric(zeta.Rows[1][3], "rh_zeta_t24")
	}
}

func BenchmarkFig8Simulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "fig8", 1)
		zeta, phi := tables[0], tables[1]
		for _, row := range zeta.Rows {
			target := row[0]
			// AT tracks every target (within simulation noise).
			if math.Abs(row[1]-target) > 0.15*target+2 {
				b.Fatalf("fig8 AT zeta = %v at target %v", row[1], target)
			}
			// RH caps near 48.
			if row[3] > 52 {
				b.Fatalf("fig8 RH zeta = %v, ceiling ~48", row[3])
			}
		}
		// AT spends far more energy than RH at every common target.
		for i, row := range phi.Rows {
			if zeta.Rows[i][0] <= 48 && row[1] < 2*row[3] {
				b.Fatalf("fig8 phi at target %v: AT %v should dwarf RH %v",
					zeta.Rows[i][0], row[1], row[3])
			}
		}
		b.ReportMetric(zeta.Rows[5][3], "rh_zeta_t56")
	}
}

func BenchmarkExtRushHourLearning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-learn", 5)
		rows := tables[0].Rows
		final := rows[len(rows)-1][2]
		// §VII.B: the order of slot capacities is learnable quickly even
		// at a tiny duty cycle. Demand near-perfect agreement by the end
		// of the bootstrap.
		if final < 0.9 {
			b.Fatalf("ext-learn final agreement = %v, want >= 0.9", final)
		}
		b.ReportMetric(final, "final_agreement")
	}
}

func BenchmarkExtSeasonalShift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-shift", 5)
		rows := tables[0].Rows
		// Post-shift recovery: the adaptive variant's capacity over the
		// last 6 epochs must beat static RH's.
		var static, adaptive float64
		n := len(rows)
		for _, row := range rows[n-6:] {
			static += row[1]
			adaptive += row[2]
		}
		if adaptive <= static*1.2 {
			b.Fatalf("ext-shift: adaptive %v should beat static %v after the shift", adaptive/6, static/6)
		}
		b.ReportMetric(adaptive/6, "adaptive_zeta_tail")
		b.ReportMetric(static/6, "static_zeta_tail")
	}
}

func BenchmarkAblationDutyCycleSensitivity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-drh", 1)
		var atKnee, atDouble float64
		for _, row := range tables[0].Rows {
			switch row[0] {
			case 1.0:
				atKnee = row[2]
			case 2.0:
				atDouble = row[2]
			}
		}
		// §VI.C: rho "does not increase abruptly" just above the knee.
		if atDouble > 2*atKnee {
			b.Fatalf("ext-drh: rho at 2x knee = %v vs %v at knee", atDouble, atKnee)
		}
	}
}

func BenchmarkAblationExponentialContacts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-exp", 1)
		if len(tables[0].Rows) < 5 {
			b.Fatal("ext-exp produced too few duty points")
		}
	}
}

func BenchmarkAblationBeaconLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-loss", 5)
		rows := tables[0].Rows
		// At 50% loss every mechanism still probes (SNIP retries each
		// cycle) but capacity must not increase with loss for AT, which
		// has no slack: compare the lossless and 50%-loss rows.
		first, last := rows[0], rows[len(rows)-1]
		if last[1] > first[1]*1.15 {
			b.Fatalf("ext-loss: AT capacity rose with loss: %v -> %v", first[1], last[1])
		}
	}
}

func BenchmarkExtMIPComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-mip", 1)
		for _, row := range tables[0].Rows {
			duty, gain := row[0], row[3]
			// §III: 2-10x more probed capacity below 1% duty.
			if duty <= 0.01 && (gain < 2 || gain > 10.5) {
				b.Fatalf("ext-mip: gain %v at duty %v outside 2-10x", gain, duty)
			}
		}
	}
}

func BenchmarkExtLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-latency", 2)
		for _, row := range tables[0].Rows {
			if row[3] >= row[1] {
				b.Fatalf("ext-latency: RH %v should undercut critically-loaded AT %v", row[3], row[1])
			}
		}
		b.ReportMetric(tables[0].Rows[1][3], "rh_latency_s")
	}
}

func BenchmarkExtRLBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-rl", 4)
		var bandit, rh float64
		for _, row := range tables[0].Rows {
			bandit += row[1]
			rh += row[3]
		}
		if rh <= bandit {
			b.Fatalf("ext-rl: RH cumulative %v should beat bandit %v", rh, bandit)
		}
		b.ReportMetric(rh/bandit, "rh_over_bandit")
	}
}

func BenchmarkExtLifetime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-lifetime", 1)
		rows := tables[0].Rows
		if rows[2][3] <= rows[0][3] {
			b.Fatalf("ext-lifetime: RH %v years must exceed AT %v", rows[2][3], rows[0][3])
		}
		b.ReportMetric(rows[2][3], "rh_years")
		b.ReportMetric(rows[0][3], "at_years")
	}
}

func BenchmarkExtContention(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-contention", 6)
		for _, row := range tables[0].Rows {
			resolve, collide := row[1], row[3]
			// Resolution must never do worse than letting acks collide.
			if resolve < collide-1.5 {
				b.Fatalf("ext-contention: resolve %v below collide %v at group prob %v",
					resolve, collide, row[0])
			}
		}
	}
}

func BenchmarkExtFleet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-fleet", 1)
		rows := tables[0].Rows
		// Columns: epoch, then per strategy (OPT, RH): zeta, phi,
		// zeta_vs_oracle, phi_vs_oracle. During the SNIP-AT bootstrap
		// the fleet undershoots its oracle; once learned plans take
		// over, goodput must climb toward it.
		boot, learned := 0.0, 0.0
		for _, row := range rows {
			if int(row[0]) < 3 {
				boot += row[3] / 3
			} else {
				learned += row[3] / float64(len(rows)-3)
			}
		}
		if learned <= boot {
			b.Fatalf("ext-fleet: learned plans (x%.3f of oracle) no better than bootstrap (x%.3f)", learned, boot)
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last[3], "opt_zeta_vs_oracle")
		b.ReportMetric(last[7], "rh_zeta_vs_oracle")
	}
}

func BenchmarkExtMobilityCrossCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tables := runAndPrint(b, "ext-mobility", 3)
		var got, want float64
		for _, row := range tables[0].Rows {
			got += row[1]
			want += row[2]
		}
		if math.Abs(got-want)/want > 0.1 {
			b.Fatalf("ext-mobility: physical total %v vs model %v", got, want)
		}
	}
}

// ---- Component micro-benchmarks ----

func BenchmarkModelUpsilon(b *testing.B) {
	sc := Roadside()
	_ = sc
	report, err := Analyze(Roadside(WithFixedLengths()))
	if err != nil {
		b.Fatal(err)
	}
	_ = report
	b.ResetTimer()
	sum := 0.0
	for i := 0; i < b.N; i++ {
		g, err := MotivationGain(0.05+float64(i%10)*0.01, 2+float64(i%18))
		if err != nil {
			b.Fatal(err)
		}
		sum += g
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

func BenchmarkAnalyzeRoadside(b *testing.B) {
	sc := Roadside(WithFixedLengths(), WithZetaTarget(24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Analyze(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimalPlanRoadside(b *testing.B) {
	sc := Roadside(WithFixedLengths(), WithZetaTarget(56), WithBudgetFraction(1.0/100))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalPlan(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateOneDayRH(b *testing.B) {
	sc := Roadside(WithZetaTarget(24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sc, SNIPRH, WithEpochs(1), WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulateTwoWeeksAT(b *testing.B) {
	sc := Roadside(WithZetaTarget(24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(sc, SNIPAT, WithEpochs(14), WithSeed(uint64(i+1))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetObserve measures the fleet's steady-state ingest path:
// a pre-built batch of observations across a working set of warm nodes.
// The path must stay allocation-light (the acceptance bound is <= 2
// allocs/op for a whole 256-observation batch; it is 0 in practice).
func BenchmarkFleetObserve(b *testing.B) {
	f, err := NewFleet(Roadside(WithZetaTarget(24)))
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 64
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%03d", i)
	}
	batch := make([]Observation, 256)
	now := 0.0
	fill := func() {
		for j := range batch {
			batch[j].Node = ids[j%nodes]
			batch[j].Time = now
			batch[j].Length = 2
			batch[j].Uploaded = -1
			now += 3.3
		}
	}
	fill()
	f.Observe(batch) // warm the shards: create every profile up front
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		if got := f.Observe(batch); got != len(batch) {
			b.Fatalf("accepted %d of %d", got, len(batch))
		}
	}
	b.ReportMetric(float64(len(batch)), "obs/op")
}

// BenchmarkFleetObserveTelemetry is BenchmarkFleetObserve with the
// telemetry bundle armed, pinning the overhead budget of the observed
// ingest path: still 0 allocs/op, and within ~10% of the untelemetered
// walltime (one histogram Observe and one ring-buffer Record per
// 256-observation batch).
func BenchmarkFleetObserveTelemetry(b *testing.B) {
	f, err := NewFleet(Roadside(WithZetaTarget(24)),
		WithTelemetry(NewTelemetry(TelemetryConfig{})))
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 64
	ids := make([]string, nodes)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%03d", i)
	}
	batch := make([]Observation, 256)
	now := 0.0
	fill := func() {
		for j := range batch {
			batch[j].Node = ids[j%nodes]
			batch[j].Time = now
			batch[j].Length = 2
			batch[j].Uploaded = -1
			now += 3.3
		}
	}
	fill()
	f.Observe(batch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fill()
		if got := f.Observe(batch); got != len(batch) {
			b.Fatalf("accepted %d of %d", got, len(batch))
		}
	}
	b.ReportMetric(float64(len(batch)), "obs/op")
}

// BenchmarkFleetSchedule measures plan serving for warm nodes whose
// plans are cached (the common case between observation batches).
func BenchmarkFleetSchedule(b *testing.B) {
	f, err := NewFleet(Roadside(WithZetaTarget(24)), WithBootstrapEpochs(2))
	if err != nil {
		b.Fatal(err)
	}
	const nodes = 16
	ids := make([]string, nodes)
	batch := make([]Observation, 0, 3*24*8)
	for i := range ids {
		ids[i] = fmt.Sprintf("node-%03d", i)
		batch = batch[:0]
		for d := 0; d < 3; d++ {
			for h := 0; h < 24; h++ {
				n := 1
				if h == 7 || h == 8 || h == 17 || h == 18 {
					n = 8
				}
				for k := 0; k < n; k++ {
					batch = append(batch, Observation{
						Node:   ids[i],
						Time:   float64(d)*86400 + float64(h)*3600 + float64(k)*400,
						Length: 2,
					})
				}
			}
		}
		f.Observe(batch)
		if _, err := f.Schedule(ids[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.Schedule(ids[i%nodes]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFleetIngest1M is the million-node scale acceptance pinned in
// BENCH_baseline.json: ingest a day of contacts for one million nodes,
// serve every node's schedule, stream the binary snapshot log, and
// restore it into a fresh fleet that must serve identical plans.
// Custom metrics:
//
//	bin_B/node    binary snapshot-log bytes per node at 1M nodes
//	json_B/node   JSON snapshot bytes per node, measured on a 10k-node
//	              fleet fed the same pattern (both formats cost a
//	              constant per node; a 1M-node JSON snapshot would
//	              materialize gigabytes for no extra information)
//	snap_s        binary snapshot wall seconds at 1M nodes
//	restore_s     restore wall seconds at 1M nodes
//
// The compact-profile + binary-log work holds while bin_B/node stays
// >= 4x under json_B/node. Skipped under -short: the full run takes on
// the order of a minute single-core.
func BenchmarkFleetIngest1M(b *testing.B) {
	if testing.Short() {
		b.Skip("million-node scale run; skipped with -short")
	}
	// Mature-profile ingest: three days of contacts in every hour slot
	// with full-precision lengths and uploads, so every EWMA lane holds
	// a learned float — the steady-state shape a deployed fleet
	// snapshots, and the shape where the JSON encoding pays ~19 text
	// bytes per float.
	const obsPerNode = 3 * 24
	ingest := func(n int) *Fleet {
		f, err := NewFleet(Roadside(WithZetaTarget(24)))
		if err != nil {
			b.Fatal(err)
		}
		batch := make([]Observation, 0, 1024)
		for i := 0; i < n; i++ {
			id := fmt.Sprintf("node-%07d", i)
			for d := 0; d < 3; d++ {
				for h := 0; h < 24; h++ {
					batch = append(batch, Observation{
						Node:     id,
						Time:     float64(d)*86400 + float64(h)*3600 + float64(i%977),
						Length:   2 + 1.3*float64((i+h+d)%7)/7 + float64(i%13)*0.0721,
						Uploaded: 900 + 70*float64((i+h)%11),
					})
				}
			}
			if len(batch)+obsPerNode > cap(batch) {
				if got := f.Observe(batch); got != len(batch) {
					b.Fatalf("accepted %d of %d", got, len(batch))
				}
				batch = batch[:0]
			}
		}
		f.Observe(batch)
		return f
	}

	// JSON-era footprint, sampled at 10k nodes.
	small := ingest(10_000)
	var jsonBuf bytes.Buffer
	if err := small.Snapshot(&jsonBuf); err != nil {
		b.Fatal(err)
	}
	jsonPerNode := float64(jsonBuf.Len()) / 10_000

	const nodes = 1_000_000
	var binPerNode, snapSec, restoreSec float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := ingest(nodes)
		for j := 0; j < nodes; j += nodes / 1000 {
			if _, err := f.Schedule(fmt.Sprintf("node-%07d", j)); err != nil {
				b.Fatal(err)
			}
		}

		var bin bytes.Buffer
		bin.Grow(128 << 20)
		t0 := time.Now()
		if err := f.SnapshotBinary(&bin); err != nil {
			b.Fatal(err)
		}
		snapSec = time.Since(t0).Seconds()
		binPerNode = float64(bin.Len()) / nodes

		restored, err := NewFleet(Roadside(WithZetaTarget(24)))
		if err != nil {
			b.Fatal(err)
		}
		t0 = time.Now()
		info, err := restored.RestoreBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		restoreSec = time.Since(t0).Seconds()
		if info.Nodes != nodes {
			b.Fatalf("restored %d of %d nodes", info.Nodes, nodes)
		}
		for _, id := range []string{"node-0000000", "node-0456789", "node-0999999"} {
			want, err := f.Schedule(id)
			if err != nil {
				b.Fatal(err)
			}
			got, err := restored.Schedule(id)
			if err != nil {
				b.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				b.Fatalf("restored schedule for %s differs", id)
			}
		}
	}
	b.ReportMetric(binPerNode, "bin_B/node")
	b.ReportMetric(jsonPerNode, "json_B/node")
	b.ReportMetric(snapSec, "snap_s")
	b.ReportMetric(restoreSec, "restore_s")
	if binPerNode > 0 && jsonPerNode/binPerNode < 4 {
		b.Fatalf("binary log is only %.1fx smaller than JSON per node (want >= 4x): %.0f vs %.0f bytes",
			jsonPerNode/binPerNode, binPerNode, jsonPerNode)
	}
}

func BenchmarkScenarioJSONRoundTrip(b *testing.B) {
	sc := Roadside(WithZetaTarget(24))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := sc.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		var back Scenario
		if err := back.UnmarshalJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}
