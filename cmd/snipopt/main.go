// Command snipopt solves the SNIP-OPT two-step scheduling optimization
// for the road-side scenario and prints the per-slot duty-cycle plan.
//
// Usage:
//
//	snipopt -target 56 -budget-frac 0.01
package main

import (
	"flag"
	"fmt"
	"os"

	"rushprobe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "snipopt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("snipopt", flag.ContinueOnError)
	var (
		target     = fs.Float64("target", 24, "probed-capacity target zeta_target in seconds per epoch")
		budgetFrac = fs.Float64("budget-frac", 1.0/1000, "energy budget PhiMax as a fraction of the epoch")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sc := rushprobe.Roadside(
		rushprobe.WithFixedLengths(),
		rushprobe.WithZetaTarget(*target),
		rushprobe.WithBudgetFraction(*budgetFrac),
	)
	plan, err := rushprobe.OptimalPlan(sc)
	if err != nil {
		return err
	}
	fmt.Printf("SNIP-OPT plan for zeta_target=%.1fs, PhiMax=%.1fs\n", *target, sc.PhiMax())
	fmt.Printf("expected zeta: %.3f s/epoch (target met: %v)\n", plan.Zeta, plan.TargetMet)
	fmt.Printf("expected phi:  %.3f s/epoch\n", plan.Phi)
	fmt.Println("per-slot duty cycles:")
	mask := sc.RushMask()
	for i, d := range plan.Duty {
		tag := ""
		if mask[i] {
			tag = "  (rush hour)"
		}
		if d > 0 {
			fmt.Printf("  slot %2d (%02d:00-%02d:00): d = %.6f%s\n", i, i, i+1, d, tag)
		}
	}
	return nil
}
