package main

import (
	"testing"
)

func TestRunDefault(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("default run: %v", err)
	}
}

func TestRunHighTarget(t *testing.T) {
	if err := run([]string{"-target", "56", "-budget-frac", "0.01"}); err != nil {
		t.Fatalf("high target: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "negative target", args: []string{"-target", "-5"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}
