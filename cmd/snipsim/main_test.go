package main

import (
	"testing"
)

func TestRunShortSimulation(t *testing.T) {
	args := []string{"-mechanism", "rh", "-target", "16", "-epochs", "2", "-seed", "3", "-per-epoch"}
	if err := run(args); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunAllMechanisms(t *testing.T) {
	for _, m := range []string{"at", "opt", "rh", "adaptive"} {
		if err := run([]string{"-mechanism", m, "-epochs", "1"}); err != nil {
			t.Errorf("mechanism %s: %v", m, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "unknown mechanism", args: []string{"-mechanism", "nope"}},
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "bad epochs", args: []string{"-mechanism", "rh", "-epochs", "0"}},
		{name: "bad loss", args: []string{"-mechanism", "rh", "-loss", "1.5"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}
