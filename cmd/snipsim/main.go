// Command snipsim runs one simulation of the road-side scenario under a
// chosen probing strategy and prints the per-epoch averages. With
// -fleet it instead co-simulates a heterogeneous node population
// against a live fleet (closed loop: observations in, learned schedules
// back out) and prints the per-epoch convergence toward the oracle.
//
// Usage:
//
//	snipsim -mechanism rh -target 24 -budget-frac 0.001 -epochs 14
//	snipsim -strategy SNIP-RH+AT -epochs 28    # any registered strategy
//	snipsim -fleet -fleet-nodes 100 -epochs 10 -fleet-drift 0.25
//	snipsim -list-strategies
package main

import (
	"flag"
	"fmt"
	"os"

	"rushprobe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "snipsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("snipsim", flag.ContinueOnError)
	var (
		mech       = fs.String("mechanism", "rh", "scheduling mechanism: at, opt, rh, adaptive")
		strat      = fs.String("strategy", "", "registered strategy name or alias; overrides -mechanism (see -list-strategies)")
		listStrats = fs.Bool("list-strategies", false, "list registered probing strategies and exit")
		target     = fs.Float64("target", 24, "probed-capacity target zeta_target in seconds per epoch")
		budgetFrac = fs.Float64("budget-frac", 1.0/1000, "energy budget PhiMax as a fraction of the epoch")
		epochs     = fs.Int("epochs", 14, "number of simulated epochs (days)")
		seed       = fs.Uint64("seed", 1, "random seed")
		loss       = fs.Float64("loss", 0, "beacon loss probability")
		perEpoch   = fs.Bool("per-epoch", false, "also print per-epoch capacity (per-replication summaries with -replications)")
		reps       = fs.Int("replications", 1, "independent replications with derived seeds")
		parallel   = fs.Int("parallel", 0, "max concurrent replications (0 = GOMAXPROCS, 1 = serial; output is identical either way)")

		fleetMode  = fs.Bool("fleet", false, "closed-loop fleet co-simulation: a heterogeneous population learns its schedules online")
		fleetNodes = fs.Int("fleet-nodes", 64, "population size of the -fleet co-simulation")
		fleetDrift = fs.Float64("fleet-drift", 0, "fraction of the -fleet population whose pattern shifts mid-run")
		driftEpoch = fs.Int("fleet-drift-epoch", 0, "epoch at which drifting nodes shift (0 = halfway)")
		driftBy    = fs.Int("fleet-drift-slots", 3, "how many slots drifting nodes shift by")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listStrats {
		for _, name := range rushprobe.Strategies() {
			desc, err := rushprobe.StrategyDescription(name)
			if err != nil {
				return err
			}
			fmt.Printf("%-12s %s\n", name, desc)
		}
		return nil
	}
	var mechanism rushprobe.Mechanism
	switch *mech {
	case "at":
		mechanism = rushprobe.SNIPAT
	case "opt":
		mechanism = rushprobe.SNIPOPT
	case "rh":
		mechanism = rushprobe.SNIPRH
	case "adaptive":
		mechanism = rushprobe.SNIPAdaptiveRH
	default:
		return fmt.Errorf("unknown mechanism %q (at, opt, rh, adaptive)", *mech)
	}
	var stratOpts []rushprobe.SimOption
	if *strat != "" {
		stratOpts = append(stratOpts, rushprobe.WithStrategy(*strat))
	}
	sc := rushprobe.Roadside(
		rushprobe.WithZetaTarget(*target),
		rushprobe.WithBudgetFraction(*budgetFrac),
		rushprobe.WithBeaconLoss(*loss),
	)
	if *fleetMode {
		if *reps > 1 {
			return fmt.Errorf("-fleet runs one co-simulation (the population is the replication axis); drop -replications")
		}
		opts := append(stratOpts,
			rushprobe.WithEpochs(*epochs),
			rushprobe.WithSeed(*seed),
			rushprobe.WithParallelism(*parallel),
			rushprobe.WithNodes(*fleetNodes),
		)
		if *fleetDrift > 0 {
			opts = append(opts, rushprobe.WithDrift(*fleetDrift, *driftEpoch, *driftBy))
		}
		sum, err := rushprobe.SimulateFleet(sc, mechanism, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("fleet strategy:   %s\n", sum.Strategy)
		fmt.Printf("population:       %d nodes x %d epochs (%d drifted)\n", sum.Nodes, sum.Epochs, sum.DriftNodes)
		fmt.Printf("plan cache:       %d solves, %d hits, %d distinct plans served\n",
			sum.Stats.PlanSolves, sum.Stats.PlanCacheHits, sum.DistinctPlans)
		fmt.Printf("observations:     %d accepted, %d stale, %d invalid\n",
			sum.Stats.Observations, sum.Stats.Stale, sum.Stats.Invalid)
		fmt.Println("per-epoch fleet means (closed loop vs oracle):")
		for _, p := range sum.PerEpoch {
			fmt.Printf("  epoch %2d: zeta %7.3f s (oracle %7.3f, x%.3f)  phi %7.3f s (oracle %7.3f, x%.3f)\n",
				p.Epoch, p.Zeta, p.OracleZeta, p.ZetaRatio, p.Phi, p.OraclePhi, p.PhiRatio)
		}
		return nil
	}
	if *reps > 1 {
		rep, err := rushprobe.SimulateReplications(sc, mechanism, *reps,
			append(stratOpts,
				rushprobe.WithEpochs(*epochs),
				rushprobe.WithSeed(*seed),
				rushprobe.WithParallelism(*parallel),
			)...,
		)
		if err != nil {
			return err
		}
		fmt.Printf("mechanism:        %s\n", rep.Mechanism)
		fmt.Printf("replications:     %d x %d epochs\n", rep.Replications, *epochs)
		fmt.Printf("zeta (probed):    %.3f s/epoch (target %.3f, ±%.3f across replications)\n", rep.Zeta, *target, rep.ZetaCI95)
		fmt.Printf("phi (probing):    %.3f s/epoch (budget %.3f, ±%.3f across replications)\n", rep.Phi, sc.PhiMax(), rep.PhiCI95)
		fmt.Printf("rho (cost/unit):  %.3f\n", rep.Rho)
		if *perEpoch {
			for i, r := range rep.Runs {
				fmt.Printf("  replication %2d: zeta = %.3f s, phi = %.3f s\n", i, r.Zeta, r.Phi)
			}
		}
		return nil
	}
	sum, err := rushprobe.Simulate(sc, mechanism,
		append(stratOpts,
			rushprobe.WithEpochs(*epochs),
			rushprobe.WithSeed(*seed),
		)...,
	)
	if err != nil {
		return err
	}
	fmt.Printf("mechanism:        %s\n", sum.Mechanism)
	fmt.Printf("epochs:           %d\n", sum.Epochs)
	fmt.Printf("zeta (probed):    %.3f s/epoch (target %.3f, ±%.3f)\n", sum.Zeta, *target, sum.ZetaCI95)
	fmt.Printf("phi (probing):    %.3f s/epoch (budget %.3f, ±%.3f)\n", sum.Phi, sc.PhiMax(), sum.PhiCI95)
	fmt.Printf("rho (cost/unit):  %.3f\n", sum.Rho)
	fmt.Printf("uploaded:         %.0f bytes/epoch\n", sum.UploadedBytes)
	fmt.Printf("contacts:         %.1f arrived, %.1f probed per epoch\n", sum.ContactsArrived, sum.ContactsProbed)
	if *perEpoch {
		for i, z := range sum.PerEpochZeta {
			fmt.Printf("  epoch %2d: zeta = %.3f s\n", i, z)
		}
	}
	return nil
}
