package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkDESSchedule-8  \t 100000 \t 232.0 ns/op \t 0 B/op \t 0 allocs/op")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Name != "BenchmarkDESSchedule-8" || r.Iterations != 100000 || r.NsPerOp != 232 {
		t.Errorf("parsed %+v", r)
	}
	if r.BytesPerOp == nil || *r.BytesPerOp != 0 || r.AllocsPerOp == nil || *r.AllocsPerOp != 0 {
		t.Errorf("alloc fields = %+v", r)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	r, ok := parseLine("BenchmarkFig7Simulation 2 25518010593 ns/op 24.38 rh_zeta_t24")
	if !ok {
		t.Fatal("line should parse")
	}
	if r.Metrics["rh_zeta_t24"] != 24.38 {
		t.Errorf("metrics = %v", r.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \trushprobe\t203.417s",
		"BenchmarkBroken notanumber 1 ns/op",
		"",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("%q should not parse as a benchmark", line)
		}
	}
}

func TestRunEmitsJSON(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkA-4 10 100.5 ns/op
PASS
BenchmarkB 20 50 ns/op 3 B/op 1 allocs/op
`)
	var out bytes.Buffer
	if err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	var results []Result
	if err := json.Unmarshal(out.Bytes(), &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Name != "BenchmarkA-4" || results[1].NsPerOp != 50 {
		t.Errorf("results = %+v", results)
	}
}
