// Command benchjson converts `go test -bench` output on stdin into a
// JSON benchmark baseline on stdout. It is the helper behind
// `make bench-baseline`, which snapshots the suite into
// BENCH_baseline.json so perf regressions show up as diffs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	// Name is the benchmark name including any -N GOMAXPROCS suffix.
	Name string `json:"name"`
	// Iterations is the measured iteration count.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the wall-clock cost per iteration.
	NsPerOp float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are present when the benchmark reports
	// allocations (-benchmem or b.ReportAllocs).
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds custom b.ReportMetric values by unit.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	results := []Result{} // non-nil so empty input encodes as [] not null
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Pass non-benchmark lines through to stderr so table output
		// remains visible when piping.
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		} else {
			fmt.Fprintln(os.Stderr, line)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine parses one `go test -bench` result line, e.g.
//
//	BenchmarkDESSchedule-8  100000  232.0 ns/op  0 B/op  0 allocs/op  1.5 extra_metric
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters}
	seenNs := false
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			r.NsPerOp = v
			seenNs = true
		case "B/op":
			b := v
			r.BytesPerOp = &b
		case "allocs/op":
			a := v
			r.AllocsPerOp = &a
		default:
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, seenNs
}
