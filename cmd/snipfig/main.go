// Command snipfig regenerates the data behind any figure of the paper.
//
// Usage:
//
//	snipfig -list
//	snipfig -fig fig5
//	snipfig -fig fig7 -seed 7 -format csv
//	snipfig -fig fig7 -strategies SNIP-RH,SNIP-RH+AT   # custom sweep axis
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"rushprobe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "snipfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("snipfig", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "", "experiment ID to run (see -list)")
		format   = fs.String("format", "text", "output format: text or csv")
		seed     = fs.Uint64("seed", 1, "random seed for simulation-based figures")
		list     = fs.Bool("list", false, "list available experiments")
		parallel = fs.Int("parallel", 0, "max concurrent sweep points (0 = GOMAXPROCS, 1 = serial; output is identical either way)")
		strats   = fs.String("strategies", "", "comma-separated registered strategies replacing the sweep's strategy axis (fig7, fig8, ext-loss, ext-latency, ext-contention)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range rushprobe.ExperimentIDs() {
			desc, err := rushprobe.ExperimentDescription(id)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %s\n", id, desc)
		}
		return nil
	}
	if *fig == "" {
		return fmt.Errorf("missing -fig (or use -list); known: %v", rushprobe.ExperimentIDs())
	}
	opts := []rushprobe.SimOption{rushprobe.WithParallelism(*parallel)}
	if *strats != "" {
		for _, name := range strings.Split(*strats, ",") {
			opts = append(opts, rushprobe.WithStrategy(strings.TrimSpace(name)))
		}
	}
	tables, err := rushprobe.RunExperiment(*fig, *seed, opts...)
	if err != nil {
		return err
	}
	for i, t := range tables {
		if i > 0 {
			fmt.Println()
		}
		switch *format {
		case "csv":
			fmt.Print(t.CSV())
		case "text":
			fmt.Print(t.Text())
		default:
			return fmt.Errorf("unknown format %q (text or csv)", *format)
		}
	}
	return nil
}
