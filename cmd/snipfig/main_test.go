package main

import (
	"testing"
)

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatalf("-list: %v", err)
	}
}

func TestRunFigure(t *testing.T) {
	for _, format := range []string{"text", "csv"} {
		if err := run([]string{"-fig", "fig4", "-format", format}); err != nil {
			t.Errorf("fig4 %s: %v", format, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "no figure", args: nil},
		{name: "unknown figure", args: []string{"-fig", "fig99"}},
		{name: "bad format", args: []string{"-fig", "fig4", "-format", "xml"}},
		{name: "bad flag", args: []string{"-nope"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}
