package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rushprobe"
)

// newFleetServer is a minimal in-test rushprobed: the daemon's four
// endpoints rushbench talks to, backed by a real Fleet.
func newFleetServer(t *testing.T) *httptest.Server {
	t.Helper()
	f, err := rushprobe.NewFleet(rushprobe.Roadside(rushprobe.WithZetaTarget(24)))
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/observe", func(w http.ResponseWriter, r *http.Request) {
		var req observeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		acc := f.Observe(req.Observations)
		json.NewEncoder(w).Encode(observeResponse{Received: len(req.Observations), Accepted: acc})
	})
	mux.HandleFunc("/v1/schedule/", func(w http.ResponseWriter, r *http.Request) {
		node := strings.TrimPrefix(r.URL.Path, "/v1/schedule/")
		sched, err := f.Schedule(node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(sched)
	})
	mux.HandleFunc("/v1/strategy/", func(w http.ResponseWriter, r *http.Request) {
		node := strings.TrimPrefix(r.URL.Path, "/v1/strategy/")
		var req struct {
			Strategy string `json:"strategy"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		inForce, err := f.SetStrategy(node, req.Strategy)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"node": node, "strategy": inForce})
	})
	return httptest.NewServer(mux)
}

// TestBenchAgainstFleet replays the generated trace against an
// in-process fleet server: every request and every observation must be
// accepted, and the JSON summary must carry throughput, latencies, and
// one report per strategy group.
func TestBenchAgainstFleet(t *testing.T) {
	srv := newFleetServer(t)
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", srv.URL,
		"-rate", "2000",
		"-duration", "500ms",
		"-concurrency", "3",
		"-batch", "50",
		"-nodes", "8",
		"-strategies", "SNIP-OPT,rh",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	var s Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, out.String())
	}
	if s.Requests.Sent == 0 || s.Requests.Failed != 0 {
		t.Fatalf("requests = %+v, want >0 sent and 0 failed", s.Requests)
	}
	if s.Observations.Accepted != int64(s.Observations.Sent) {
		t.Fatalf("accepted %d of %d observations (replay must never go stale)",
			s.Observations.Accepted, s.Observations.Sent)
	}
	if s.ThroughputOPS <= 0 || s.LatencyMs.P50 < 0 || s.LatencyMs.Max <= 0 {
		t.Fatalf("throughput/latency not measured: %+v", s)
	}
	if len(s.Strategies) != 2 {
		t.Fatalf("strategy reports = %+v, want 2 groups", s.Strategies)
	}
	for _, r := range s.Strategies {
		if r.Nodes != 4 {
			t.Fatalf("group %s has %d nodes, want 4", r.Strategy, r.Nodes)
		}
		if r.MeanZeta <= 0 || r.MeanPhi <= 0 {
			t.Fatalf("group %s has empty plan aggregates: %+v", r.Strategy, r)
		}
	}
	// 7 generated days at batch 50 crosses epoch boundaries many times;
	// the deltas of the second group are measured against the first.
	if s.Strategies[0].DeltaPhiPct != 0 {
		t.Fatalf("first group must be the delta baseline, got %+v", s.Strategies[0])
	}
}

// TestBenchFailsOnUnhealthyTarget asserts the generator reports an
// unreachable daemon instead of hammering it.
func TestBenchFailsOnUnhealthyTarget(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-addr", "http://127.0.0.1:1",
		"-duration", "100ms",
		"-wait", "200ms",
	}, &out)
	if err == nil {
		t.Fatal("unreachable daemon should error")
	}
}

// TestFillLatenciesNearestRank pins the percentile definition: on 50
// sorted samples of 1..50 ms, nearest-rank gives p50=25, p90=45,
// p99=50. The old truncating index int(p*(len-1)) read p99 from index
// 48 (= 49 ms), underestimating tail latency on every small sample.
func TestFillLatenciesNearestRank(t *testing.T) {
	lats := make([]time.Duration, 50)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	var s Summary
	fillLatencies(&s, lats)
	if s.LatencyMs.P50 != 25 {
		t.Errorf("p50 = %v ms, want 25", s.LatencyMs.P50)
	}
	if s.LatencyMs.P90 != 45 {
		t.Errorf("p90 = %v ms, want 45", s.LatencyMs.P90)
	}
	if s.LatencyMs.P99 != 50 {
		t.Errorf("p99 = %v ms, want 50 (nearest rank), not 49 (truncated index)", s.LatencyMs.P99)
	}
	if s.LatencyMs.Max != 50 {
		t.Errorf("max = %v ms, want 50", s.LatencyMs.Max)
	}
	// A single sample reports itself at every percentile.
	var one Summary
	fillLatencies(&one, []time.Duration{7 * time.Millisecond})
	if one.LatencyMs.P50 != 7 || one.LatencyMs.P99 != 7 {
		t.Errorf("single-sample percentiles = %+v, want all 7 ms", one.LatencyMs)
	}
	// Empty input leaves the zero value.
	var empty Summary
	fillLatencies(&empty, nil)
	if empty.LatencyMs.P99 != 0 {
		t.Errorf("empty input set p99 = %v", empty.LatencyMs.P99)
	}
}
