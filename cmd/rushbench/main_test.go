package main

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"rushprobe"
	"rushprobe/internal/contact"
)

// newFleetServer is a minimal in-test rushprobed: the daemon's
// endpoints rushbench talks to, backed by a real telemetry-armed Fleet
// (so /metrics serves real stage histograms for the scrape tests).
func newFleetServer(t *testing.T, opts ...rushprobe.FleetOption) *httptest.Server {
	t.Helper()
	tel := rushprobe.NewTelemetry(rushprobe.TelemetryConfig{})
	opts = append([]rushprobe.FleetOption{rushprobe.WithTelemetry(tel)}, opts...)
	f, err := rushprobe.NewFleet(rushprobe.Roadside(rushprobe.WithZetaTarget(24)), opts...)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := tel.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/observe", func(w http.ResponseWriter, r *http.Request) {
		var req observeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		acc := f.Observe(req.Observations)
		json.NewEncoder(w).Encode(observeResponse{Received: len(req.Observations), Accepted: acc})
	})
	mux.HandleFunc("/v1/schedule/", func(w http.ResponseWriter, r *http.Request) {
		node := strings.TrimPrefix(r.URL.Path, "/v1/schedule/")
		sched, err := f.Schedule(node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(sched)
	})
	mux.HandleFunc("/v1/schedules", func(w http.ResponseWriter, r *http.Request) {
		var req struct {
			Nodes []string `json:"nodes"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		scheds, err := f.ScheduleBatch(req.Nodes)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"schedules": scheds})
	})
	mux.HandleFunc("/v1/profile/", func(w http.ResponseWriter, r *http.Request) {
		node := strings.TrimPrefix(r.URL.Path, "/v1/profile/")
		prof, err := f.Profile(node)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(prof)
	})
	mux.HandleFunc("/v1/strategy/", func(w http.ResponseWriter, r *http.Request) {
		node := strings.TrimPrefix(r.URL.Path, "/v1/strategy/")
		var req struct {
			Strategy string `json:"strategy"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		inForce, err := f.SetStrategy(node, req.Strategy)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"node": node, "strategy": inForce})
	})
	return httptest.NewServer(mux)
}

// TestBenchAgainstFleet replays the generated trace against an
// in-process fleet server: every request and every observation must be
// accepted, and the JSON summary must carry throughput, latencies, and
// one report per strategy group.
func TestBenchAgainstFleet(t *testing.T) {
	srv := newFleetServer(t)
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", srv.URL,
		"-rate", "2000",
		"-duration", "500ms",
		"-concurrency", "3",
		"-batch", "50",
		"-nodes", "8",
		"-strategies", "SNIP-OPT,rh",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	var s Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary is not JSON: %v\n%s", err, out.String())
	}
	if s.Requests.Sent == 0 || s.Requests.Failed != 0 {
		t.Fatalf("requests = %+v, want >0 sent and 0 failed", s.Requests)
	}
	if s.Observations.Accepted != int64(s.Observations.Sent) {
		t.Fatalf("accepted %d of %d observations (replay must never go stale)",
			s.Observations.Accepted, s.Observations.Sent)
	}
	if s.ThroughputOPS <= 0 || s.LatencyMs.P50 < 0 || s.LatencyMs.Max <= 0 {
		t.Fatalf("throughput/latency not measured: %+v", s)
	}
	if len(s.Strategies) != 2 {
		t.Fatalf("strategy reports = %+v, want 2 groups", s.Strategies)
	}
	for _, r := range s.Strategies {
		if r.Nodes != 4 {
			t.Fatalf("group %s has %d nodes, want 4", r.Strategy, r.Nodes)
		}
		if r.MeanZeta <= 0 || r.MeanPhi <= 0 {
			t.Fatalf("group %s has empty plan aggregates: %+v", r.Strategy, r)
		}
	}
	// 7 generated days at batch 50 crosses epoch boundaries many times;
	// the deltas of the second group are measured against the first.
	if s.Strategies[0].DeltaPhiPct != 0 {
		t.Fatalf("first group must be the delta baseline, got %+v", s.Strategies[0])
	}
	bs := s.BatchSchedule
	if bs == nil || !bs.Supported {
		t.Fatalf("batch schedule report missing or unsupported: %+v", bs)
	}
	if bs.Nodes != 8 || bs.Verified != 8 || bs.Mismatched != 0 {
		t.Fatalf("batch schedules did not match the per-node path: %+v", bs)
	}
}

// TestBenchScrapesServerTelemetry closes the metrics loop: the summary
// must embed server-side stage histogram deltas scraped around the run,
// and the deltas must cover only this run's work (a second replay
// against the same warm daemon reports its own counts, not cumulative
// ones).
func TestBenchScrapesServerTelemetry(t *testing.T) {
	srv := newFleetServer(t)
	defer srv.Close()

	runOnce := func() Summary {
		t.Helper()
		var out bytes.Buffer
		err := run([]string{
			"-addr", srv.URL,
			"-rate", "1000",
			"-duration", "300ms",
			"-concurrency", "2",
			"-batch", "50",
			"-nodes", "4",
		}, &out)
		if err != nil {
			t.Fatalf("run: %v\noutput: %s", err, out.String())
		}
		var s Summary
		if err := json.Unmarshal(out.Bytes(), &s); err != nil {
			t.Fatalf("summary is not JSON: %v", err)
		}
		return s
	}

	for pass, s := range []Summary{runOnce(), runOnce()} {
		if s.Server == nil || !s.Server.Scraped {
			t.Fatalf("pass %d: server telemetry not scraped: %+v", pass, s.Server)
		}
		stages := make(map[string]ServerStage, len(s.Server.Stages))
		for _, st := range s.Server.Stages {
			stages[st.Stage] = st
		}
		ingest, ok := stages["rushprobe_ingest_batch_seconds"]
		if !ok {
			t.Fatalf("pass %d: no ingest stage in server report: %+v", pass, s.Server.Stages)
		}
		// Every observe request is one fleet ingest batch; a cumulative
		// (non-delta) report would double on the second pass.
		if int(ingest.Count) != s.Requests.Sent {
			t.Fatalf("pass %d: ingest delta counts %v batches for %d requests",
				pass, ingest.Count, s.Requests.Sent)
		}
		if ingest.MeanMs < 0 || ingest.P99Ms < ingest.P50Ms {
			t.Fatalf("pass %d: incoherent ingest latencies: %+v", pass, ingest)
		}
		if _, ok := stages["rushprobe_schedule_seconds"]; !ok {
			t.Fatalf("pass %d: no schedule stage despite schedule fetches: %+v", pass, s.Server.Stages)
		}
	}
}

// TestBenchSurvivesMetricslessDaemon pins the best-effort contract: a
// daemon without /metrics (or an older one) degrades the server report
// to Scraped=false with a reason — never a failed run.
func TestBenchSurvivesMetricslessDaemon(t *testing.T) {
	srv := newFleetServer(t)
	defer srv.Close()
	// Front the fleet server with a proxy that 404s /metrics only.
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/metrics" {
			http.NotFound(w, r)
			return
		}
		var resp *http.Response
		var err error
		if r.Method == http.MethodPost {
			resp, err = http.Post(srv.URL+r.URL.Path, "application/json", r.Body)
		} else {
			resp, err = http.Get(srv.URL + r.URL.Path)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer proxy.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", proxy.URL,
		"-rate", "500",
		"-duration", "200ms",
		"-batch", "50",
		"-nodes", "2",
	}, &out)
	if err != nil {
		t.Fatalf("run must not fail on a metricsless daemon: %v\n%s", err, out.String())
	}
	var s Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary is not JSON: %v", err)
	}
	if s.Server == nil || s.Server.Scraped || s.Server.Error == "" {
		t.Fatalf("server report must degrade with a reason: %+v", s.Server)
	}
	if s.Requests.Failed != 0 {
		t.Fatalf("replay failed alongside the degraded scrape: %+v", s.Requests)
	}
}

// TestBenchRetriesTransientFailures fronts the fleet server with a
// flaky proxy that sheds every first attempt (429 + Retry-After, then
// a 500) and asserts the replay completes with zero hard failures,
// counting the noise as retries and shed responses instead.
func TestBenchRetriesTransientFailures(t *testing.T) {
	srv := newFleetServer(t)
	defer srv.Close()

	var mu sync.Mutex
	tries := make(map[string]int) // per-body attempt count
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/observe" {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			mu.Lock()
			tries[string(body)]++
			n := tries[string(body)]
			mu.Unlock()
			switch n {
			case 1:
				w.Header().Set("Retry-After", "0")
				http.Error(w, "shedding", http.StatusTooManyRequests)
				return
			case 2:
				http.Error(w, "hiccup", http.StatusInternalServerError)
				return
			}
			r.Body = io.NopCloser(bytes.NewReader(body))
		}
		// Strip the test server's implicit proxy role: re-issue against
		// the real fleet server.
		resp, err := http.Post(srv.URL+r.URL.Path, "application/json", r.Body)
		if r.Method == http.MethodGet {
			resp, err = http.Get(srv.URL + r.URL.Path)
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer flaky.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", flaky.URL,
		"-rate", "1000",
		"-duration", "300ms",
		"-concurrency", "2",
		"-batch", "50",
		"-nodes", "4",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	var s Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary is not JSON: %v", err)
	}
	if s.Requests.Failed != 0 {
		t.Fatalf("failed = %d, want 0 (transient errors must be retried)", s.Requests.Failed)
	}
	if s.Requests.Retries < 2*s.Requests.Sent {
		t.Fatalf("retries = %d for %d requests, want >= 2 per request (429 then 500)",
			s.Requests.Retries, s.Requests.Sent)
	}
	if s.Requests.Shed < s.Requests.Sent {
		t.Fatalf("shed = %d for %d requests, want one 429 counted per request",
			s.Requests.Shed, s.Requests.Sent)
	}
	if s.Observations.Accepted != int64(s.Observations.Sent) {
		t.Fatalf("accepted %d of %d observations after retries",
			s.Observations.Accepted, s.Observations.Sent)
	}
}

// TestBenchGivesUpAfterRetryBudget pins the terminal path: a target
// that always sheds must exhaust the budget and count hard failures.
func TestBenchGivesUpAfterRetryBudget(t *testing.T) {
	always := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/healthz":
			w.WriteHeader(http.StatusOK)
		case strings.HasPrefix(r.URL.Path, "/v1/schedule/"):
			json.NewEncoder(w).Encode(map[string]any{"mechanism": "SNIP-OPT", "zeta": 1.0, "phi": 1.0})
		default:
			http.Error(w, "no", http.StatusServiceUnavailable)
		}
	}))
	defer always.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", always.URL,
		"-rate", "100",
		"-duration", "100ms",
		"-batch", "10",
		"-nodes", "1",
		"-retries", "1",
	}, &out)
	if err == nil {
		t.Fatal("a permanently shedding daemon must fail the run")
	}
	var s Summary
	if jerr := json.Unmarshal(out.Bytes(), &s); jerr != nil {
		t.Fatalf("summary is not JSON: %v", jerr)
	}
	if s.Requests.Failed == 0 {
		t.Fatalf("failed = 0 against a dead ingest path: %+v", s.Requests)
	}
	if s.Requests.Retries == 0 {
		t.Fatal("no retries recorded before giving up")
	}
}

// TestRetryDelay pins the backoff policy: exponential from the base,
// capped, jittered into [0.5x, 1.5x), and a longer Retry-After wins
// (itself capped).
func TestRetryDelay(t *testing.T) {
	if d := retryDelay(1, "", 0); d != retryBase/2 {
		t.Errorf("attempt 1 zero-jitter delay = %v, want %v", d, retryBase/2)
	}
	if d := retryDelay(2, "", 0.5); d != 2*retryBase {
		t.Errorf("attempt 2 mid-jitter delay = %v, want %v", d, 2*retryBase)
	}
	if d := retryDelay(20, "", 0.999); d > retryCap+retryCap/2 {
		t.Errorf("attempt 20 delay = %v, exceeds the jittered cap", d)
	}
	if d := retryDelay(1, "1", 0); d != time.Second {
		t.Errorf("Retry-After 1s not honored: got %v", d)
	}
	if d := retryDelay(1, "3600", 0); d != retryCap {
		t.Errorf("hour-long Retry-After must clamp to %v, got %v", retryCap, d)
	}
	if d := retryDelay(1, "garbage", 0); d != retryBase/2 {
		t.Errorf("unparseable Retry-After changed the delay: %v", d)
	}
}

// TestRotateTrace checks the drift-inject regime transform: same
// contact count and per-day volume, start-sorted, times shifted within
// their day.
func TestRotateTrace(t *testing.T) {
	contacts, _, err := loadContacts("", 1)
	if err != nil {
		t.Fatal(err)
	}
	rot := rotateTrace(contacts, driftShiftSeconds)
	if len(rot) != len(contacts) {
		t.Fatalf("rotation changed the contact count: %d -> %d", len(contacts), len(rot))
	}
	days := func(cs []contact.Contact) map[int]int {
		m := make(map[int]int)
		for _, c := range cs {
			m[int(c.Start.Seconds()/86400)]++
		}
		return m
	}
	orig, moved := days(contacts), days(rot)
	for d, n := range orig {
		if moved[d] != n {
			t.Fatalf("day %d volume changed: %d -> %d (rotation must stay within the day)", d, n, moved[d])
		}
	}
	for i := 1; i < len(rot); i++ {
		if rot[i].Start < rot[i-1].Start {
			t.Fatalf("rotated trace not sorted at %d: %v < %v", i, rot[i].Start, rot[i-1].Start)
		}
	}
	// The regimes must actually differ: the hour-of-day histogram moves.
	hour := func(cs []contact.Contact) [24]int {
		var h [24]int
		for _, c := range cs {
			h[int(math.Mod(c.Start.Seconds(), 86400)/3600)]++
		}
		return h
	}
	if hour(contacts) == hour(rot) {
		t.Fatal("rotation left the time-of-day profile unchanged")
	}
}

// TestBenchDriftInjectSoak is the closed loop: replay against a fleet
// with the CUSUM detector on, rotate every node's regime mid-run, and
// require the daemon to notice. This is the same contract `make soak`
// asserts against a real rushprobed process.
func TestBenchDriftInjectSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak replay takes ~1s")
	}
	srv := newFleetServer(t, rushprobe.WithDriftDetector("cusum"))
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", srv.URL,
		"-rate", "20000",
		"-duration", "400ms",
		"-concurrency", "2",
		"-batch", "100",
		"-nodes", "2",
		"-drift-inject",
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	var s Summary
	if err := json.Unmarshal(out.Bytes(), &s); err != nil {
		t.Fatalf("summary is not JSON: %v", err)
	}
	if s.Drift == nil {
		t.Fatal("-drift-inject produced no drift report")
	}
	if s.Drift.NodesInjected != 2 {
		t.Fatalf("injected %d of 2 nodes", s.Drift.NodesInjected)
	}
	if s.Drift.NodesDetected < 1 || s.Drift.DriftEvents < 1 {
		t.Fatalf("no drift detected after injection: %+v", *s.Drift)
	}
	if s.Drift.NodesDetected > 0 && s.Drift.MeanLatencyEpochs <= 0 {
		t.Fatalf("detected nodes without a latency figure: %+v", *s.Drift)
	}
}

// TestBenchDriftInjectFailsWithoutDetector asserts the soak's teeth:
// against a fleet with no detector the run must exit non-zero, because
// injected drift going unnoticed is exactly the regression the soak
// exists to catch.
func TestBenchDriftInjectFailsWithoutDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("soak replay takes ~1s")
	}
	srv := newFleetServer(t)
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{
		"-addr", srv.URL,
		"-rate", "20000",
		"-duration", "300ms",
		"-batch", "100",
		"-nodes", "2",
		"-drift-inject",
	}, &out)
	if err == nil {
		t.Fatal("drift injected with no detector must fail the run")
	}
	var s Summary
	if jerr := json.Unmarshal(out.Bytes(), &s); jerr != nil {
		t.Fatalf("summary is not JSON: %v", jerr)
	}
	if s.Drift == nil || s.Drift.NodesDetected != 0 {
		t.Fatalf("detector-less fleet reported detections: %+v", s.Drift)
	}
}

// TestBenchFailsOnUnhealthyTarget asserts the generator reports an
// unreachable daemon instead of hammering it.
func TestBenchFailsOnUnhealthyTarget(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{
		"-addr", "http://127.0.0.1:1",
		"-duration", "100ms",
		"-wait", "200ms",
	}, &out)
	if err == nil {
		t.Fatal("unreachable daemon should error")
	}
}

// TestFillLatenciesNearestRank pins the percentile definition: on 50
// sorted samples of 1..50 ms, nearest-rank gives p50=25, p90=45,
// p99=50. The old truncating index int(p*(len-1)) read p99 from index
// 48 (= 49 ms), underestimating tail latency on every small sample.
func TestFillLatenciesNearestRank(t *testing.T) {
	lats := make([]time.Duration, 50)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	var s Summary
	fillLatencies(&s, lats)
	if s.LatencyMs.P50 != 25 {
		t.Errorf("p50 = %v ms, want 25", s.LatencyMs.P50)
	}
	if s.LatencyMs.P90 != 45 {
		t.Errorf("p90 = %v ms, want 45", s.LatencyMs.P90)
	}
	if s.LatencyMs.P99 != 50 {
		t.Errorf("p99 = %v ms, want 50 (nearest rank), not 49 (truncated index)", s.LatencyMs.P99)
	}
	if s.LatencyMs.Max != 50 {
		t.Errorf("max = %v ms, want 50", s.LatencyMs.Max)
	}
	// A single sample reports itself at every percentile.
	var one Summary
	fillLatencies(&one, []time.Duration{7 * time.Millisecond})
	if one.LatencyMs.P50 != 7 || one.LatencyMs.P99 != 7 {
		t.Errorf("single-sample percentiles = %+v, want all 7 ms", one.LatencyMs)
	}
	// Empty input leaves the zero value.
	var empty Summary
	fillLatencies(&empty, nil)
	if empty.LatencyMs.P99 != 0 {
		t.Errorf("empty input set p99 = %v", empty.LatencyMs.P99)
	}
}
