// Command rushbench is a trace-replay load generator for rushprobed: it
// streams a contact trace (generated internally or recorded with
// tracegen) against a running daemon as batched observe requests at a
// configurable rate and concurrency, optionally splits the synthetic
// node population across probing strategies, and reports throughput,
// request-latency percentiles, and per-strategy energy/goodput deltas
// as a JSON summary on stdout.
//
// Usage:
//
//	rushprobed -addr :8080 &
//	rushbench -addr http://127.0.0.1:8080 -rate 1000 -duration 10s
//	rushbench -trace trace.csv -nodes 64 -strategies SNIP-OPT,SNIP-RH
//	rushbench -drift-inject -duration 10s
//
// Transient failures (connection errors, 429, 5xx) are retried with
// capped exponential backoff honoring Retry-After, so a daemon that
// sheds load under pressure reads as backpressure in the summary
// (requests.retries, requests.shed), not as hard failures.
//
// With -drift-inject the replay becomes a drift soak: halfway through
// the run every node's trace regime is swapped for a slot-rotated copy
// (rush hours move to a different time of day), and after the replay
// the summary's drift section reports how many nodes the daemon's
// detector caught and at what epoch latency. The exit status is
// non-zero if drift was injected but no node was detected, so CI can
// assert the closed loop end to end (`make soak`).
//
// The exit status is also non-zero if any request fails after retries,
// so CI can assert a clean run (`make loadtest`).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"rushprobe"
	"rushprobe/internal/contact"
	"rushprobe/internal/rng"
	"rushprobe/internal/scenario"
	"rushprobe/internal/simtime"
	"rushprobe/internal/telemetry"
	"rushprobe/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rushbench:", err)
		os.Exit(1)
	}
}

// config carries the resolved flags.
type config struct {
	base        string
	rate        float64
	duration    time.Duration
	concurrency int
	batch       int
	nodes       int
	tracePath   string
	seed        uint64
	strategies  []string
	wait        time.Duration
	retries     int
	driftInject bool
	logger      *slog.Logger
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rushbench", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "base URL of the rushprobed daemon")
		rate        = fs.Float64("rate", 1000, "target observation ingest rate (observations/second)")
		duration    = fs.Duration("duration", 10*time.Second, "how long to stream observations")
		concurrency = fs.Int("concurrency", 4, "concurrent HTTP workers")
		batch       = fs.Int("batch", 100, "observations per observe request")
		nodes       = fs.Int("nodes", 64, "synthetic node population the trace is fanned out to")
		tracePath   = fs.String("trace", "", "contact trace CSV to replay (e.g. from tracegen); default: generate the road-side trace")
		seed        = fs.Uint64("seed", 1, "seed for the internally generated trace")
		strategies  = fs.String("strategies", "", "comma-separated strategies to split the node population across (default: fleet default only)")
		wait        = fs.Duration("wait", 5*time.Second, "how long to wait for the daemon's /v1/healthz before starting")
		retries     = fs.Int("retries", 4, "max retries per request for transient failures (connect errors, 429, 5xx)")
		driftInject = fs.Bool("drift-inject", false, "swap every node to a slot-rotated trace regime at half the run and report the daemon's drift-detection latency")
		logFormat   = fs.String("log-format", "text", "progress log format on stderr: text or json")
		logLevel    = fs.String("log-level", "info", "minimum progress log level: debug, info, warn, or error")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := telemetry.NewLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	cfg := config{
		base:        strings.TrimSuffix(*addr, "/"),
		rate:        *rate,
		duration:    *duration,
		concurrency: *concurrency,
		batch:       *batch,
		nodes:       *nodes,
		tracePath:   *tracePath,
		seed:        *seed,
		wait:        *wait,
		retries:     *retries,
		driftInject: *driftInject,
		logger:      logger,
	}
	if !strings.HasPrefix(cfg.base, "http://") && !strings.HasPrefix(cfg.base, "https://") {
		cfg.base = "http://" + cfg.base
	}
	if cfg.rate <= 0 || cfg.duration <= 0 || cfg.concurrency < 1 || cfg.batch < 1 || cfg.nodes < 1 {
		return fmt.Errorf("rate, duration, concurrency, batch, and nodes must be positive")
	}
	if cfg.retries < 0 {
		return fmt.Errorf("retries must be non-negative")
	}
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			cfg.strategies = append(cfg.strategies, strings.TrimSpace(s))
		}
	}
	summary, err := bench(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary); err != nil {
		return err
	}
	if summary.Requests.Failed > 0 {
		return fmt.Errorf("%d of %d requests failed", summary.Requests.Failed, summary.Requests.Sent)
	}
	if d := summary.Drift; d != nil && d.NodesInjected > 0 && d.NodesDetected == 0 {
		return fmt.Errorf("drift injected into %d nodes but no detector fired (is the daemon running with -drift-detector?)", d.NodesInjected)
	}
	if bs := summary.BatchSchedule; bs != nil && bs.Mismatched > 0 {
		return fmt.Errorf("batch schedule verification: %d of %d plans differ from the per-node schedules", bs.Mismatched, bs.Nodes)
	}
	return nil
}

// Summary is the JSON report rushbench emits.
type Summary struct {
	Config struct {
		Target      string  `json:"target"`
		RatePerSec  float64 `json:"ratePerSec"`
		DurationSec float64 `json:"durationSec"`
		Concurrency int     `json:"concurrency"`
		Batch       int     `json:"batch"`
		Nodes       int     `json:"nodes"`
		TraceSource string  `json:"traceSource"`
	} `json:"config"`
	Requests struct {
		Sent int `json:"sent"`
		// Failed counts requests that never succeeded, after retries.
		Failed int `json:"failed"`
		// Retries counts re-sent attempts that followed a transient
		// failure; Shed counts the 429 responses among them. A loaded
		// daemon shows up here, not in Failed.
		Retries int `json:"retries"`
		Shed    int `json:"shed"`
	} `json:"requests"`
	Observations struct {
		Sent     int   `json:"sent"`
		Accepted int64 `json:"accepted"`
	} `json:"observations"`
	ElapsedSec    float64 `json:"elapsedSec"`
	ThroughputRPS float64 `json:"throughputRps"`
	ThroughputOPS float64 `json:"throughputObsPerSec"`
	LatencyMs     struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latencyMs"`
	Strategies    []StrategyReport     `json:"strategies"`
	BatchSchedule *BatchScheduleReport `json:"batchSchedule,omitempty"`
	Drift         *DriftReport         `json:"drift,omitempty"`
	Server        *ServerReport        `json:"server"`
}

// BatchScheduleReport verifies the daemon's batch schedule endpoint:
// one POST /v1/schedules naming every replayed node must return the
// same plans, in input order, as the per-node GETs. Probing is best
// effort — a daemon that predates the endpoint (or can't answer)
// reports Supported=false with the reason, never a failed run — but a
// plan that differs between the two paths is a serving bug and fails
// the run.
type BatchScheduleReport struct {
	Supported  bool    `json:"supported"`
	Error      string  `json:"error,omitempty"`
	Nodes      int     `json:"nodes"`
	LatencyMs  float64 `json:"latencyMs"`
	Verified   int     `json:"verified"`
	Mismatched int     `json:"mismatched"`
}

// ServerReport closes the telemetry loop: rushbench scrapes the
// daemon's /metrics before and after the replay and reports the
// server-side stage latency deltas next to its own client-side
// latencies, so a slow run can be attributed (network vs ingest vs
// solve) from the summary alone. Scraping is best effort — a daemon
// without the histogram families, or one behind a proxy that blocks
// /metrics, yields Scraped=false with the reason, never a failed run.
type ServerReport struct {
	Scraped bool   `json:"scraped"`
	Error   string `json:"error,omitempty"`
	// Stages holds the per-stage histogram deltas attributable to this
	// run (stages idle during the replay are omitted).
	Stages []ServerStage `json:"stages,omitempty"`
}

// ServerStage is one stage histogram's delta over the replay window.
type ServerStage struct {
	Stage  string  `json:"stage"`
	Count  float64 `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// serverStageFamilies are the daemon histogram families the server
// report covers, in report order.
var serverStageFamilies = []string{
	"rushprobe_ingest_batch_seconds",
	"rushprobe_schedule_seconds",
	"rushprobe_solve_seconds",
	"rushprobe_advance_epoch_seconds",
	"rushprobe_snapshot_save_seconds",
	"rushprobe_snapshot_restore_seconds",
}

// scrapeStageHistograms fetches /metrics and extracts the stage
// histograms under the strict text-format parser (shared with the
// daemon's own smoke validation).
func scrapeStageHistograms(client *http.Client, base string) (map[string]telemetry.ParsedHistogram, error) {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	fams, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	out := make(map[string]telemetry.ParsedHistogram, len(serverStageFamilies))
	for _, name := range serverStageFamilies {
		fam, ok := fams[name]
		if !ok || fam.Type != "histogram" {
			continue
		}
		if err := fam.ValidateHistogram(); err != nil {
			return nil, fmt.Errorf("metrics: %s: %w", name, err)
		}
		out[name] = fam.Histogram()
	}
	return out, nil
}

// serverReport diffs the post-run scrape against the pre-run one.
func serverReport(client *http.Client, base string, before map[string]telemetry.ParsedHistogram, beforeErr error) *ServerReport {
	r := &ServerReport{}
	if beforeErr != nil {
		r.Error = fmt.Sprintf("pre-run scrape: %v", beforeErr)
		return r
	}
	after, err := scrapeStageHistograms(client, base)
	if err != nil {
		r.Error = fmt.Sprintf("post-run scrape: %v", err)
		return r
	}
	r.Scraped = true
	for _, name := range serverStageFamilies {
		ah, ok := after[name]
		if !ok {
			continue
		}
		d := ah
		if bh, ok := before[name]; ok {
			d = ah.Sub(bh)
		}
		if d.Count == 0 {
			continue
		}
		r.Stages = append(r.Stages, ServerStage{
			Stage:  name,
			Count:  d.Count,
			MeanMs: d.Mean() * 1e3,
			P50Ms:  d.Quantile(0.50) * 1e3,
			P90Ms:  d.Quantile(0.90) * 1e3,
			P99Ms:  d.Quantile(0.99) * 1e3,
		})
	}
	return r
}

// DriftReport summarizes a -drift-inject soak: how many nodes had
// their trace regime rotated mid-run, how many the daemon's drift
// detector caught afterwards, and the detection latency in epochs.
type DriftReport struct {
	// NodesInjected counts nodes whose replay switched to the rotated
	// regime (a node too lightly loaded to get a second-half batch is
	// not injected).
	NodesInjected int `json:"nodesInjected"`
	// NodesDetected counts injected nodes whose profile shows a
	// detector firing at or after the node's inject epoch.
	NodesDetected int `json:"nodesDetected"`
	// DriftEvents is the total detector-firing count across injected
	// nodes.
	DriftEvents int64 `json:"driftEvents"`
	// MeanLatencyEpochs averages (firstDriftEpoch - injectEpoch + 1)
	// over the detected nodes whose first firing came after injection;
	// MaxLatencyEpochs is the worst such node. Zero when nothing was
	// detected.
	MeanLatencyEpochs float64 `json:"meanLatencyEpochs"`
	MaxLatencyEpochs  int     `json:"maxLatencyEpochs"`
	// FalseAlarms counts detector firings recorded before any
	// injection happened.
	FalseAlarms int `json:"falseAlarms"`
}

// StrategyReport aggregates the schedules served to one strategy group
// after the replay: the group's mean expected energy (phi) and goodput
// (zeta, probed contact capacity — the upload opportunity), plus deltas
// against the first group.
type StrategyReport struct {
	Strategy     string  `json:"strategy"`
	Nodes        int     `json:"nodes"`
	MeanZeta     float64 `json:"meanZeta"`
	MeanPhi      float64 `json:"meanPhi"`
	Rho          float64 `json:"rho,omitempty"`
	DeltaZetaPct float64 `json:"deltaZetaPct"`
	DeltaPhiPct  float64 `json:"deltaPhiPct"`
}

// loadContacts reads the replay trace from the CSV path, or generates
// the canonical road-side trace (7 days) when path is empty.
func loadContacts(path string, seed uint64) ([]contact.Contact, string, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		cs, err := trace.Read(f)
		return cs, path, err
	}
	gen, err := contact.NewGenerator(scenario.Roadside(), rng.New(seed))
	if err != nil {
		return nil, "", err
	}
	return gen.GenerateUntil(simtime.Instant(7 * simtime.Day)), "generated:roadside-7d", nil
}

// nodeCursor replays one node's view of the trace: consecutive draws
// walk the contacts in order and wrap around with a whole-epoch time
// offset, so a node's observation times are strictly nondecreasing
// across passes (the fleet discards backward-in-time reports as stale).
type nodeCursor struct {
	id       string
	contacts []contact.Contact
	pos      int
	offset   float64
	last     float64 // start time of the last emitted observation
}

func (c *nodeCursor) next(span float64) rushprobe.Observation {
	o := rushprobe.Observation{
		Node:     c.id,
		Time:     c.contacts[c.pos].Start.Seconds() + c.offset,
		Length:   c.contacts[c.pos].Length.Seconds(),
		Uploaded: -1,
	}
	c.last = o.Time
	c.pos++
	if c.pos == len(c.contacts) {
		c.pos = 0
		c.offset += span
	}
	return o
}

// swap replaces the cursor's trace mid-replay, restarting it at the
// next whole-day boundary past the last emitted observation so times
// stay nondecreasing and epoch-aligned. It returns the epoch (day)
// index of the regime change: the epoch the swap cut short, since that
// truncated epoch is the first whose streams deviate from the old
// regime (the rotated trace proper begins one epoch later).
func (c *nodeCursor) swap(contacts []contact.Contact) int {
	c.contacts = contacts
	c.pos = 0
	c.offset = (math.Floor(c.last/86400) + 1) * 86400
	return int(c.last / 86400)
}

// rotateTrace shifts every contact's time of day by shift seconds
// (mod one day, same day index) and restores start order: the rush
// hours move to a different part of the day while the daily contact
// volume and length distribution stay identical — drift only a
// slot-level detector can see before throughput decays.
func rotateTrace(contacts []contact.Contact, shift float64) []contact.Contact {
	out := make([]contact.Contact, len(contacts))
	for i, c := range contacts {
		day := math.Floor(c.Start.Seconds() / 86400)
		tod := math.Mod(c.Start.Seconds()-day*86400+shift, 86400)
		out[i] = contact.Contact{
			Start:  simtime.Instant(day*86400 + tod),
			Length: c.Length,
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Start < out[b].Start })
	return out
}

// driftShiftSeconds is how far -drift-inject rotates the rush hours
// (a quarter day: far enough that the old rush mask misses the new
// peak entirely).
const driftShiftSeconds = 6 * 3600

// batchPlan is one pre-marshaled observe request with its pacing slot.
type batchPlan struct {
	index int
	node  int
	body  []byte
	count int
	at    time.Duration
}

type observeRequest struct {
	Observations []rushprobe.Observation `json:"observations"`
}

type observeResponse struct {
	Received int `json:"received"`
	Accepted int `json:"accepted"`
}

// bench runs the replay and collects the summary.
func bench(cfg config) (*Summary, error) {
	contacts, source, err := loadContacts(cfg.tracePath, cfg.seed)
	if err != nil {
		return nil, err
	}
	if len(contacts) == 0 {
		return nil, fmt.Errorf("empty contact trace")
	}
	// Wrap-around span: the trace length rounded up to whole days, so
	// replay passes stay epoch-aligned.
	last := contacts[len(contacts)-1]
	span := math.Ceil((last.Start.Seconds()+last.Length.Seconds())/86400) * 86400

	if err := waitHealthy(cfg.base, cfg.wait); err != nil {
		return nil, err
	}
	log := cfg.logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	// Pre-run scrape: the baseline the post-run scrape is diffed against
	// so the server report covers only this replay's work. Best effort —
	// the error is carried into the report, not fatal.
	scrapeClient := &http.Client{Timeout: 10 * time.Second}
	before, beforeErr := scrapeStageHistograms(scrapeClient, cfg.base)
	if beforeErr != nil {
		log.Warn("pre-run metrics scrape failed; server report will be empty", "err", beforeErr)
	}

	// Assign strategies to node groups before the replay starts.
	groups := cfg.strategies
	if len(groups) == 0 {
		groups = []string{""}
	}
	nodeIDs := make([]string, cfg.nodes)
	cursors := make([]nodeCursor, cfg.nodes)
	for n := range nodeIDs {
		nodeIDs[n] = fmt.Sprintf("bench-%04d", n)
		cursors[n] = nodeCursor{id: nodeIDs[n], contacts: contacts}
	}
	for n, id := range nodeIDs {
		name := groups[n%len(groups)]
		if name == "" {
			continue
		}
		if err := setStrategy(cfg.base, id, name); err != nil {
			return nil, err
		}
	}

	// Pre-build every batch so node cursors advance serially (replay
	// order per node is what keeps observations non-stale); workers then
	// only pace and POST. Batch i belongs to node i % nodes, and a
	// node's batches always land on the same worker, preserving
	// per-node send order under concurrency.
	total := int(math.Ceil(cfg.rate * cfg.duration.Seconds() / float64(cfg.batch)))
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(cfg.batch) / cfg.rate * float64(time.Second))

	// Drift soak: a batch paced into the second half of the run draws
	// from the rotated regime; the first such batch per node swaps that
	// node's cursor and records the inject epoch.
	var rotated []contact.Contact
	injectEpoch := make([]int, cfg.nodes)
	for n := range injectEpoch {
		injectEpoch[n] = -1
	}
	if cfg.driftInject {
		rotated = rotateTrace(contacts, driftShiftSeconds)
	}

	plans := make([]batchPlan, total)
	obsSent := 0
	for i := range plans {
		node := i % cfg.nodes
		at := time.Duration(i) * interval
		if cfg.driftInject && at >= cfg.duration/2 && injectEpoch[node] < 0 {
			injectEpoch[node] = cursors[node].swap(rotated)
		}
		obs := make([]rushprobe.Observation, cfg.batch)
		for j := range obs {
			obs[j] = cursors[node].next(span)
		}
		body, err := json.Marshal(observeRequest{Observations: obs})
		if err != nil {
			return nil, err
		}
		plans[i] = batchPlan{index: i, node: node, body: body, count: len(obs), at: at}
		obsSent += len(obs)
	}
	log.Info("replay starting",
		"target", cfg.base,
		"nodes", cfg.nodes,
		"batches", total,
		"observations", obsSent,
		"ratePerSec", cfg.rate,
		"durationSec", cfg.duration.Seconds(),
		"driftInject", cfg.driftInject)

	// Replay: worker w owns the batches of nodes n with n % concurrency
	// == w, in index order.
	var (
		mu        sync.Mutex
		latencies []time.Duration
		failed    int
		retries   int
		shed      int
		accepted  int64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range plans {
				p := &plans[i]
				if p.node%cfg.concurrency != w {
					continue
				}
				if d := time.Until(start.Add(p.at)); d > 0 {
					time.Sleep(d)
				}
				t0 := time.Now()
				acc, tx, err := postObserve(client, cfg.base, p.body, cfg.retries)
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				retries += tx.retries
				shed += tx.shed
				if err != nil {
					failed++
				} else {
					accepted += int64(acc)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	log.Info("replay done",
		"elapsedSec", elapsed.Seconds(),
		"sent", len(plans),
		"failed", failed,
		"retries", retries,
		"shed", shed)

	s := &Summary{}
	s.Config.Target = cfg.base
	s.Config.RatePerSec = cfg.rate
	s.Config.DurationSec = cfg.duration.Seconds()
	s.Config.Concurrency = cfg.concurrency
	s.Config.Batch = cfg.batch
	s.Config.Nodes = cfg.nodes
	s.Config.TraceSource = source
	s.Requests.Sent = len(plans)
	s.Requests.Failed = failed
	s.Requests.Retries = retries
	s.Requests.Shed = shed
	s.Observations.Sent = obsSent
	s.Observations.Accepted = accepted
	s.ElapsedSec = elapsed.Seconds()
	if elapsed > 0 {
		s.ThroughputRPS = float64(len(plans)) / elapsed.Seconds()
		s.ThroughputOPS = float64(obsSent) / elapsed.Seconds()
	}
	fillLatencies(s, latencies)

	reports, err := strategyReports(client, cfg.base, groups, nodeIDs)
	if err != nil {
		return nil, err
	}
	s.Strategies = reports

	s.BatchSchedule = batchScheduleReport(client, cfg.base, nodeIDs)
	if bs := s.BatchSchedule; bs.Supported {
		log.Info("batch schedules cross-checked",
			"nodes", bs.Nodes, "verified", bs.Verified,
			"mismatched", bs.Mismatched, "latencyMs", bs.LatencyMs)
	} else {
		log.Warn("batch schedule endpoint unavailable", "reason", bs.Error)
	}

	if cfg.driftInject {
		dr, err := driftReport(client, cfg.base, nodeIDs, injectEpoch)
		if err != nil {
			return nil, err
		}
		s.Drift = dr
		log.Info("drift soak scored",
			"nodesInjected", dr.NodesInjected,
			"nodesDetected", dr.NodesDetected,
			"meanLatencyEpochs", dr.MeanLatencyEpochs)
	}

	s.Server = serverReport(scrapeClient, cfg.base, before, beforeErr)
	if s.Server.Scraped {
		log.Info("server telemetry scraped", "stages", len(s.Server.Stages))
	} else {
		log.Warn("server telemetry unavailable", "reason", s.Server.Error)
	}
	return s, nil
}

// driftReport reads every injected node's profile back from the daemon
// and scores its detector: a node counts as detected when a firing is
// recorded at or after the epoch its regime rotated.
func driftReport(client *http.Client, base string, nodeIDs []string, injectEpoch []int) (*DriftReport, error) {
	dr := &DriftReport{}
	latencySum, latencyN := 0, 0
	for n, id := range nodeIDs {
		if injectEpoch[n] < 0 {
			continue
		}
		dr.NodesInjected++
		var prof struct {
			DriftEvents     int64 `json:"driftEvents"`
			FirstDriftEpoch int   `json:"firstDriftEpoch"`
			LastDriftEpoch  int   `json:"lastDriftEpoch"`
		}
		if err := getJSON(client, base+"/v1/profile/"+id, &prof); err != nil {
			return nil, fmt.Errorf("profile %s: %w", id, err)
		}
		if prof.DriftEvents == 0 {
			continue
		}
		dr.DriftEvents += prof.DriftEvents
		if prof.LastDriftEpoch < injectEpoch[n] {
			dr.FalseAlarms++
			continue
		}
		dr.NodesDetected++
		if prof.FirstDriftEpoch < injectEpoch[n] {
			// The first firing predates the injection (a false alarm);
			// the node still detected the real shift, but its latency
			// is unmeasurable from the profile.
			dr.FalseAlarms++
			continue
		}
		lat := prof.FirstDriftEpoch - injectEpoch[n] + 1
		latencySum += lat
		latencyN++
		if lat > dr.MaxLatencyEpochs {
			dr.MaxLatencyEpochs = lat
		}
	}
	if latencyN > 0 {
		dr.MeanLatencyEpochs = float64(latencySum) / float64(latencyN)
	}
	return dr, nil
}

// fillLatencies computes the latency percentiles in milliseconds using
// the nearest-rank definition: the p-th percentile of n sorted samples
// is sample ceil(p*n) (1-based). A truncating index like
// int(p*(n-1)) systematically underestimates high percentiles on small
// samples — the p99 of 50 samples would read the 49th value, not the
// 50th.
func fillLatencies(s *Summary, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return float64(lats[i]) / float64(time.Millisecond)
	}
	s.LatencyMs.P50 = pct(0.50)
	s.LatencyMs.P90 = pct(0.90)
	s.LatencyMs.P99 = pct(0.99)
	s.LatencyMs.Max = float64(lats[len(lats)-1]) / float64(time.Millisecond)
}

// strategyReports fetches every node's served schedule and aggregates
// expected goodput/energy per strategy group, with deltas against the
// first group.
func strategyReports(client *http.Client, base string, groups, nodeIDs []string) ([]StrategyReport, error) {
	type agg struct {
		zeta, phi float64
		n         int
		name      string
	}
	aggs := make([]agg, len(groups))
	for n, id := range nodeIDs {
		g := n % len(groups)
		var sched struct {
			Mechanism string  `json:"mechanism"`
			Zeta      float64 `json:"zeta"`
			Phi       float64 `json:"phi"`
		}
		if err := getJSON(client, base+"/v1/schedule/"+id, &sched); err != nil {
			return nil, fmt.Errorf("schedule %s: %w", id, err)
		}
		aggs[g].zeta += sched.Zeta
		aggs[g].phi += sched.Phi
		aggs[g].n++
		aggs[g].name = sched.Mechanism
	}
	out := make([]StrategyReport, len(groups))
	for g := range aggs {
		r := StrategyReport{Strategy: aggs[g].name, Nodes: aggs[g].n}
		if groups[g] != "" {
			r.Strategy = groups[g]
		}
		if aggs[g].n > 0 {
			r.MeanZeta = aggs[g].zeta / float64(aggs[g].n)
			r.MeanPhi = aggs[g].phi / float64(aggs[g].n)
		}
		if r.MeanZeta > 0 {
			r.Rho = r.MeanPhi / r.MeanZeta
		}
		out[g] = r
	}
	for g := range out {
		if out[0].MeanZeta > 0 {
			out[g].DeltaZetaPct = 100 * (out[g].MeanZeta - out[0].MeanZeta) / out[0].MeanZeta
		}
		if out[0].MeanPhi > 0 {
			out[g].DeltaPhiPct = 100 * (out[g].MeanPhi - out[0].MeanPhi) / out[0].MeanPhi
		}
	}
	return out, nil
}

// batchScheduleReport cross-checks POST /v1/schedules against the
// per-node GET path: same nodes, same plans, same order. Endpoint or
// transport trouble degrades to Supported=false with a reason;
// mismatched plans are counted for the caller to fail on.
func batchScheduleReport(client *http.Client, base string, nodeIDs []string) *BatchScheduleReport {
	rep := &BatchScheduleReport{Nodes: len(nodeIDs)}
	body, err := json.Marshal(struct {
		Nodes []string `json:"nodes"`
	}{Nodes: nodeIDs})
	if err != nil {
		rep.Error = err.Error()
		return rep
	}
	t0 := time.Now()
	resp, err := client.Post(base+"/v1/schedules", "application/json", bytes.NewReader(body))
	if err != nil {
		rep.Error = err.Error()
		return rep
	}
	defer resp.Body.Close()
	rep.LatencyMs = float64(time.Since(t0)) / float64(time.Millisecond)
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		rep.Error = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(msg)))
		return rep
	}
	var got struct {
		Schedules []*rushprobe.Schedule `json:"schedules"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		rep.Error = "decode: " + err.Error()
		return rep
	}
	rep.Supported = true
	if len(got.Schedules) != len(nodeIDs) {
		rep.Error = fmt.Sprintf("%d plans for %d nodes", len(got.Schedules), len(nodeIDs))
		rep.Mismatched = len(nodeIDs)
		return rep
	}
	for i, id := range nodeIDs {
		// The per-node response wraps the schedule with a node field;
		// decoding both paths into Schedule and re-marshaling compares
		// the plans themselves, byte for byte.
		var single rushprobe.Schedule
		if err := getJSON(client, base+"/v1/schedule/"+id, &single); err != nil {
			rep.Error = fmt.Sprintf("schedule %s: %v", id, err)
			return rep
		}
		batched, err := json.Marshal(got.Schedules[i])
		if err != nil {
			rep.Error = err.Error()
			return rep
		}
		direct, err := json.Marshal(&single)
		if err != nil {
			rep.Error = err.Error()
			return rep
		}
		if bytes.Equal(batched, direct) {
			rep.Verified++
		} else {
			rep.Mismatched++
		}
	}
	return rep
}

// waitHealthy polls /v1/healthz until the daemon answers or the budget
// runs out.
func waitHealthy(base string, budget time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon at %s not healthy after %v: %w", base, budget, err)
			}
			return fmt.Errorf("daemon at %s not healthy after %v", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// setStrategy assigns a node's strategy via POST /v1/strategy/{node}.
func setStrategy(base, node, name string) error {
	body, err := json.Marshal(struct {
		Strategy string `json:"strategy"`
	}{Strategy: name})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/strategy/"+node, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("set strategy %s for %s: HTTP %d: %s", name, node, resp.StatusCode, data)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// txStats counts the transport-level noise behind one logical request.
type txStats struct {
	retries int // attempts re-sent after a transient failure
	shed    int // 429 responses among them
}

// Retry pacing: exponential from retryBase, capped at retryCap, with
// ±50% jitter so synchronized workers don't re-converge on a daemon
// that just shed them.
const (
	retryBase = 100 * time.Millisecond
	retryCap  = 2 * time.Second
)

// retryDelay computes the backoff before retry `attempt` (1-based).
// jitter must be in [0, 1). A parseable Retry-After (delta-seconds)
// wins over the computed backoff when longer, capped at retryCap so a
// confused server can't stall the replay.
func retryDelay(attempt int, retryAfter string, jitter float64) time.Duration {
	d := retryBase
	for i := 1; i < attempt && d < retryCap; i++ {
		d *= 2
	}
	if d > retryCap {
		d = retryCap
	}
	d = time.Duration(float64(d) * (0.5 + jitter))
	if s, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && s > 0 {
		ra := time.Duration(s) * time.Second
		if ra > retryCap {
			ra = retryCap
		}
		if ra > d {
			d = ra
		}
	}
	return d
}

// retryableStatus reports whether a response status is worth retrying:
// explicit backpressure (429) and server-side errors (5xx). Client
// errors are bugs in the request and retry the same way they failed.
func retryableStatus(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// postObserve sends one observe batch and returns the accepted count,
// retrying transient failures (connection errors, 429, 5xx) with
// capped exponential backoff up to `retries` extra attempts.
func postObserve(client *http.Client, base string, body []byte, retries int) (int, txStats, error) {
	var tx txStats
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
		var status int
		var retryAfter string
		if err == nil {
			status = resp.StatusCode
			retryAfter = resp.Header.Get("Retry-After")
			if status == http.StatusOK {
				var or observeResponse
				derr := json.NewDecoder(resp.Body).Decode(&or)
				resp.Body.Close()
				if derr != nil {
					return 0, tx, derr
				}
				return or.Accepted, tx, nil
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if status == http.StatusTooManyRequests {
				tx.shed++
			}
			if !retryableStatus(status) {
				return 0, tx, fmt.Errorf("HTTP %d", status)
			}
		}
		if attempt >= retries {
			if err != nil {
				return 0, tx, err
			}
			return 0, tx, fmt.Errorf("HTTP %d after %d retries", status, attempt)
		}
		tx.retries++
		time.Sleep(retryDelay(attempt+1, retryAfter, rand.Float64()))
	}
}

// getJSON fetches a URL and decodes the JSON body into v.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
