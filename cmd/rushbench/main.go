// Command rushbench is a trace-replay load generator for rushprobed: it
// streams a contact trace (generated internally or recorded with
// tracegen) against a running daemon as batched observe requests at a
// configurable rate and concurrency, optionally splits the synthetic
// node population across probing strategies, and reports throughput,
// request-latency percentiles, and per-strategy energy/goodput deltas
// as a JSON summary on stdout.
//
// Usage:
//
//	rushprobed -addr :8080 &
//	rushbench -addr http://127.0.0.1:8080 -rate 1000 -duration 10s
//	rushbench -trace trace.csv -nodes 64 -strategies SNIP-OPT,SNIP-RH
//
// The exit status is non-zero if any request fails, so CI can assert a
// clean run (`make loadtest`).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"rushprobe"
	"rushprobe/internal/contact"
	"rushprobe/internal/rng"
	"rushprobe/internal/scenario"
	"rushprobe/internal/simtime"
	"rushprobe/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rushbench:", err)
		os.Exit(1)
	}
}

// config carries the resolved flags.
type config struct {
	base        string
	rate        float64
	duration    time.Duration
	concurrency int
	batch       int
	nodes       int
	tracePath   string
	seed        uint64
	strategies  []string
	wait        time.Duration
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rushbench", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8080", "base URL of the rushprobed daemon")
		rate        = fs.Float64("rate", 1000, "target observation ingest rate (observations/second)")
		duration    = fs.Duration("duration", 10*time.Second, "how long to stream observations")
		concurrency = fs.Int("concurrency", 4, "concurrent HTTP workers")
		batch       = fs.Int("batch", 100, "observations per observe request")
		nodes       = fs.Int("nodes", 64, "synthetic node population the trace is fanned out to")
		tracePath   = fs.String("trace", "", "contact trace CSV to replay (e.g. from tracegen); default: generate the road-side trace")
		seed        = fs.Uint64("seed", 1, "seed for the internally generated trace")
		strategies  = fs.String("strategies", "", "comma-separated strategies to split the node population across (default: fleet default only)")
		wait        = fs.Duration("wait", 5*time.Second, "how long to wait for the daemon's /v1/healthz before starting")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := config{
		base:        strings.TrimSuffix(*addr, "/"),
		rate:        *rate,
		duration:    *duration,
		concurrency: *concurrency,
		batch:       *batch,
		nodes:       *nodes,
		tracePath:   *tracePath,
		seed:        *seed,
		wait:        *wait,
	}
	if !strings.HasPrefix(cfg.base, "http://") && !strings.HasPrefix(cfg.base, "https://") {
		cfg.base = "http://" + cfg.base
	}
	if cfg.rate <= 0 || cfg.duration <= 0 || cfg.concurrency < 1 || cfg.batch < 1 || cfg.nodes < 1 {
		return fmt.Errorf("rate, duration, concurrency, batch, and nodes must be positive")
	}
	if *strategies != "" {
		for _, s := range strings.Split(*strategies, ",") {
			cfg.strategies = append(cfg.strategies, strings.TrimSpace(s))
		}
	}
	summary, err := bench(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(summary); err != nil {
		return err
	}
	if summary.Requests.Failed > 0 {
		return fmt.Errorf("%d of %d requests failed", summary.Requests.Failed, summary.Requests.Sent)
	}
	return nil
}

// Summary is the JSON report rushbench emits.
type Summary struct {
	Config struct {
		Target      string  `json:"target"`
		RatePerSec  float64 `json:"ratePerSec"`
		DurationSec float64 `json:"durationSec"`
		Concurrency int     `json:"concurrency"`
		Batch       int     `json:"batch"`
		Nodes       int     `json:"nodes"`
		TraceSource string  `json:"traceSource"`
	} `json:"config"`
	Requests struct {
		Sent   int `json:"sent"`
		Failed int `json:"failed"`
	} `json:"requests"`
	Observations struct {
		Sent     int   `json:"sent"`
		Accepted int64 `json:"accepted"`
	} `json:"observations"`
	ElapsedSec    float64 `json:"elapsedSec"`
	ThroughputRPS float64 `json:"throughputRps"`
	ThroughputOPS float64 `json:"throughputObsPerSec"`
	LatencyMs     struct {
		P50 float64 `json:"p50"`
		P90 float64 `json:"p90"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latencyMs"`
	Strategies []StrategyReport `json:"strategies"`
}

// StrategyReport aggregates the schedules served to one strategy group
// after the replay: the group's mean expected energy (phi) and goodput
// (zeta, probed contact capacity — the upload opportunity), plus deltas
// against the first group.
type StrategyReport struct {
	Strategy     string  `json:"strategy"`
	Nodes        int     `json:"nodes"`
	MeanZeta     float64 `json:"meanZeta"`
	MeanPhi      float64 `json:"meanPhi"`
	Rho          float64 `json:"rho,omitempty"`
	DeltaZetaPct float64 `json:"deltaZetaPct"`
	DeltaPhiPct  float64 `json:"deltaPhiPct"`
}

// loadContacts reads the replay trace from the CSV path, or generates
// the canonical road-side trace (7 days) when path is empty.
func loadContacts(path string, seed uint64) ([]contact.Contact, string, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		cs, err := trace.Read(f)
		return cs, path, err
	}
	gen, err := contact.NewGenerator(scenario.Roadside(), rng.New(seed))
	if err != nil {
		return nil, "", err
	}
	return gen.GenerateUntil(simtime.Instant(7 * simtime.Day)), "generated:roadside-7d", nil
}

// nodeCursor replays one node's view of the trace: consecutive draws
// walk the contacts in order and wrap around with a whole-epoch time
// offset, so a node's observation times are strictly nondecreasing
// across passes (the fleet discards backward-in-time reports as stale).
type nodeCursor struct {
	id     string
	pos    int
	offset float64
}

func (c *nodeCursor) next(contacts []contact.Contact, span float64) rushprobe.Observation {
	o := rushprobe.Observation{
		Node:     c.id,
		Time:     contacts[c.pos].Start.Seconds() + c.offset,
		Length:   contacts[c.pos].Length.Seconds(),
		Uploaded: -1,
	}
	c.pos++
	if c.pos == len(contacts) {
		c.pos = 0
		c.offset += span
	}
	return o
}

// batchPlan is one pre-marshaled observe request with its pacing slot.
type batchPlan struct {
	index int
	node  int
	body  []byte
	count int
	at    time.Duration
}

type observeRequest struct {
	Observations []rushprobe.Observation `json:"observations"`
}

type observeResponse struct {
	Received int `json:"received"`
	Accepted int `json:"accepted"`
}

// bench runs the replay and collects the summary.
func bench(cfg config) (*Summary, error) {
	contacts, source, err := loadContacts(cfg.tracePath, cfg.seed)
	if err != nil {
		return nil, err
	}
	if len(contacts) == 0 {
		return nil, fmt.Errorf("empty contact trace")
	}
	// Wrap-around span: the trace length rounded up to whole days, so
	// replay passes stay epoch-aligned.
	last := contacts[len(contacts)-1]
	span := math.Ceil((last.Start.Seconds()+last.Length.Seconds())/86400) * 86400

	if err := waitHealthy(cfg.base, cfg.wait); err != nil {
		return nil, err
	}

	// Assign strategies to node groups before the replay starts.
	groups := cfg.strategies
	if len(groups) == 0 {
		groups = []string{""}
	}
	nodeIDs := make([]string, cfg.nodes)
	cursors := make([]nodeCursor, cfg.nodes)
	for n := range nodeIDs {
		nodeIDs[n] = fmt.Sprintf("bench-%04d", n)
		cursors[n] = nodeCursor{id: nodeIDs[n]}
	}
	for n, id := range nodeIDs {
		name := groups[n%len(groups)]
		if name == "" {
			continue
		}
		if err := setStrategy(cfg.base, id, name); err != nil {
			return nil, err
		}
	}

	// Pre-build every batch so node cursors advance serially (replay
	// order per node is what keeps observations non-stale); workers then
	// only pace and POST. Batch i belongs to node i % nodes, and a
	// node's batches always land on the same worker, preserving
	// per-node send order under concurrency.
	total := int(math.Ceil(cfg.rate * cfg.duration.Seconds() / float64(cfg.batch)))
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(cfg.batch) / cfg.rate * float64(time.Second))
	plans := make([]batchPlan, total)
	obsSent := 0
	for i := range plans {
		node := i % cfg.nodes
		obs := make([]rushprobe.Observation, cfg.batch)
		for j := range obs {
			obs[j] = cursors[node].next(contacts, span)
		}
		body, err := json.Marshal(observeRequest{Observations: obs})
		if err != nil {
			return nil, err
		}
		plans[i] = batchPlan{index: i, node: node, body: body, count: len(obs), at: time.Duration(i) * interval}
		obsSent += len(obs)
	}

	// Replay: worker w owns the batches of nodes n with n % concurrency
	// == w, in index order.
	var (
		mu        sync.Mutex
		latencies []time.Duration
		failed    int
		accepted  int64
	)
	client := &http.Client{Timeout: 30 * time.Second}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := range plans {
				p := &plans[i]
				if p.node%cfg.concurrency != w {
					continue
				}
				if d := time.Until(start.Add(p.at)); d > 0 {
					time.Sleep(d)
				}
				t0 := time.Now()
				acc, err := postObserve(client, cfg.base, p.body)
				lat := time.Since(t0)
				mu.Lock()
				latencies = append(latencies, lat)
				if err != nil {
					failed++
				} else {
					accepted += int64(acc)
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	s := &Summary{}
	s.Config.Target = cfg.base
	s.Config.RatePerSec = cfg.rate
	s.Config.DurationSec = cfg.duration.Seconds()
	s.Config.Concurrency = cfg.concurrency
	s.Config.Batch = cfg.batch
	s.Config.Nodes = cfg.nodes
	s.Config.TraceSource = source
	s.Requests.Sent = len(plans)
	s.Requests.Failed = failed
	s.Observations.Sent = obsSent
	s.Observations.Accepted = accepted
	s.ElapsedSec = elapsed.Seconds()
	if elapsed > 0 {
		s.ThroughputRPS = float64(len(plans)) / elapsed.Seconds()
		s.ThroughputOPS = float64(obsSent) / elapsed.Seconds()
	}
	fillLatencies(s, latencies)

	reports, err := strategyReports(client, cfg.base, groups, nodeIDs)
	if err != nil {
		return nil, err
	}
	s.Strategies = reports
	return s, nil
}

// fillLatencies computes the latency percentiles in milliseconds using
// the nearest-rank definition: the p-th percentile of n sorted samples
// is sample ceil(p*n) (1-based). A truncating index like
// int(p*(n-1)) systematically underestimates high percentiles on small
// samples — the p99 of 50 samples would read the 49th value, not the
// 50th.
func fillLatencies(s *Summary, lats []time.Duration) {
	if len(lats) == 0 {
		return
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(lats)))) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(lats) {
			i = len(lats) - 1
		}
		return float64(lats[i]) / float64(time.Millisecond)
	}
	s.LatencyMs.P50 = pct(0.50)
	s.LatencyMs.P90 = pct(0.90)
	s.LatencyMs.P99 = pct(0.99)
	s.LatencyMs.Max = float64(lats[len(lats)-1]) / float64(time.Millisecond)
}

// strategyReports fetches every node's served schedule and aggregates
// expected goodput/energy per strategy group, with deltas against the
// first group.
func strategyReports(client *http.Client, base string, groups, nodeIDs []string) ([]StrategyReport, error) {
	type agg struct {
		zeta, phi float64
		n         int
		name      string
	}
	aggs := make([]agg, len(groups))
	for n, id := range nodeIDs {
		g := n % len(groups)
		var sched struct {
			Mechanism string  `json:"mechanism"`
			Zeta      float64 `json:"zeta"`
			Phi       float64 `json:"phi"`
		}
		if err := getJSON(client, base+"/v1/schedule/"+id, &sched); err != nil {
			return nil, fmt.Errorf("schedule %s: %w", id, err)
		}
		aggs[g].zeta += sched.Zeta
		aggs[g].phi += sched.Phi
		aggs[g].n++
		aggs[g].name = sched.Mechanism
	}
	out := make([]StrategyReport, len(groups))
	for g := range aggs {
		r := StrategyReport{Strategy: aggs[g].name, Nodes: aggs[g].n}
		if groups[g] != "" {
			r.Strategy = groups[g]
		}
		if aggs[g].n > 0 {
			r.MeanZeta = aggs[g].zeta / float64(aggs[g].n)
			r.MeanPhi = aggs[g].phi / float64(aggs[g].n)
		}
		if r.MeanZeta > 0 {
			r.Rho = r.MeanPhi / r.MeanZeta
		}
		out[g] = r
	}
	for g := range out {
		if out[0].MeanZeta > 0 {
			out[g].DeltaZetaPct = 100 * (out[g].MeanZeta - out[0].MeanZeta) / out[0].MeanZeta
		}
		if out[0].MeanPhi > 0 {
			out[g].DeltaPhiPct = 100 * (out[g].MeanPhi - out[0].MeanPhi) / out[0].MeanPhi
		}
	}
	return out, nil
}

// waitHealthy polls /v1/healthz until the daemon answers or the budget
// runs out.
func waitHealthy(base string, budget time.Duration) error {
	client := &http.Client{Timeout: 2 * time.Second}
	deadline := time.Now().Add(budget)
	for {
		resp, err := client.Get(base + "/v1/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("daemon at %s not healthy after %v: %w", base, budget, err)
			}
			return fmt.Errorf("daemon at %s not healthy after %v", base, budget)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// setStrategy assigns a node's strategy via POST /v1/strategy/{node}.
func setStrategy(base, node, name string) error {
	body, err := json.Marshal(struct {
		Strategy string `json:"strategy"`
	}{Strategy: name})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/strategy/"+node, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("set strategy %s for %s: HTTP %d: %s", name, node, resp.StatusCode, data)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

// postObserve sends one observe batch and returns the accepted count.
func postObserve(client *http.Client, base string, body []byte) (int, error) {
	resp, err := client.Post(base+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return 0, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	var or observeResponse
	if err := json.NewDecoder(resp.Body).Decode(&or); err != nil {
		return 0, err
	}
	return or.Accepted, nil
}

// getJSON fetches a URL and decodes the JSON body into v.
func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
