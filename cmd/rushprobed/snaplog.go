package main

import (
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"rushprobe"
)

// snaplogCompactRatio triggers compaction once the delta tail outgrows
// the base snapshot: past 1x, replaying the log costs more than a full
// rewrite would.
const snaplogCompactRatio = 1.0

// snaplogStore manages the daemon's incremental binary snapshot log:
// restore at startup (torn tails recovered loudly, corruption fatal),
// periodic dirty-node delta appends with fsync, and compaction — a
// full fsync-before-rename rewrite — when the delta tail outgrows the
// base, on POST /v1/snapshot, and at shutdown.
type snaplogStore struct {
	path   string
	fleet  *rushprobe.Fleet
	logger *slog.Logger

	mu          sync.Mutex
	file        *os.File // O_APPEND handle between compactions
	base        int64    // bytes of the last full snapshot
	appended    int64    // delta bytes since the last compaction
	deltas      int64
	deltaNodes  int64
	compactions int64
}

func newSnaplogStore(f *rushprobe.Fleet, path string, logger *slog.Logger) *snaplogStore {
	return &snaplogStore{path: path, fleet: f, logger: logger}
}

// restore loads the log into the fleet. A missing file is a fresh
// start; a torn tail (crash mid-append) is dropped and logged loudly;
// anything else — corruption, config mismatch, an empty file — is a
// hard error naming the path, never a silent fresh start.
func (st *snaplogStore) restore() (bool, error) {
	file, err := os.Open(st.path)
	if errors.Is(err, os.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	defer file.Close()
	t0 := time.Now()
	info, err := st.fleet.RestoreBinary(file)
	if err != nil {
		return false, fmt.Errorf("snapshot log %s is not restorable (remove or replace it to start fresh): %w", st.path, err)
	}
	if info.Truncated {
		st.logger.Warn("snapshot log has a torn tail — dropped it, recovered the valid prefix",
			"path", st.path, "tornOffset", info.TornOffset,
			"frames", info.Frames, "nodes", info.Nodes)
	}
	st.logger.Info("snapshot log restored",
		"path", st.path, "nodes", info.Nodes, "frames", info.Frames,
		"generations", info.Generations, "duration", time.Since(t0))
	return true, nil
}

// open (re)opens the append handle and records the current size as the
// base. Called after restore/compact with the lock already held or
// before any concurrency exists.
func (st *snaplogStore) open() error {
	file, err := os.OpenFile(st.path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644)
	if err != nil {
		return err
	}
	fi, err := file.Stat()
	if err != nil {
		file.Close()
		return err
	}
	st.file = file
	st.base = fi.Size()
	st.appended = 0
	return nil
}

// countingWriter tracks delta bytes so the compaction trigger can
// compare tail size against the base snapshot.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// appendDelta appends the dirty nodes to the log and fsyncs. When the
// accumulated delta tail outgrows the base snapshot it compacts
// instead. Idle intervals (no dirty nodes) cost one counter scan and
// no I/O.
func (st *snaplogStore) appendDelta() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.file == nil {
		return fmt.Errorf("snapshot log %s is not open", st.path)
	}
	if st.fleet.DirtyNodes() == 0 {
		return nil
	}
	cw := &countingWriter{w: st.file}
	nodes, err := st.fleet.SnapshotBinaryDelta(cw)
	st.appended += cw.n
	if err != nil {
		// The tail may now hold a torn frame. Leave it: restore drops
		// torn tails, and the next compaction rewrites the whole log.
		return fmt.Errorf("snapshot log %s: delta append: %w", st.path, err)
	}
	if err := st.file.Sync(); err != nil {
		return fmt.Errorf("snapshot log %s: sync: %w", st.path, err)
	}
	st.deltas++
	st.deltaNodes += int64(nodes)
	if float64(st.appended) > snaplogCompactRatio*float64(st.base) {
		return st.compactLocked()
	}
	return nil
}

// compact rewrites the log as one full snapshot, atomically and
// durably (temp + fsync + rename), and reopens the append handle.
func (st *snaplogStore) compact() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.compactLocked()
}

func (st *snaplogStore) compactLocked() error {
	dir := filepath.Dir(st.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(st.path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := st.fleet.SnapshotBinary(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot log %s: compact: %w", st.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	size, err := tmp.Seek(0, io.SeekEnd)
	if err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), st.path); err != nil {
		return err
	}
	if st.file != nil {
		//rushlint:allow durability — closing the pre-compaction inode: the rename already published the new log, so this close failing loses nothing
		st.file.Close() // old inode, fully superseded by the rename
		st.file = nil
	}
	if err := st.open(); err != nil {
		return err
	}
	st.base = size
	st.compactions++
	return nil
}

// stats snapshots the store's counters for /metrics.
func (st *snaplogStore) stats() (base, appended, deltas, deltaNodes, compactions int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.base, st.appended, st.deltas, st.deltaNodes, st.compactions
}

// close compacts one last time (shutdown persistence) and releases the
// append handle.
func (st *snaplogStore) close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if err := st.compactLocked(); err != nil {
		return err
	}
	if st.file == nil {
		return nil
	}
	err := st.file.Close()
	st.file = nil
	return err
}
