package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rushprobe"
)

// migrationTopology is a routed topology under test: shard daemons
// (each with its own snapshot log) behind one router daemon.
type migrationTopology struct {
	routerURL string
	shardURLs []string
	fleets    []*rushprobe.Fleet
	servers   []*server
	dir       string
}

func newMigrationTopology(t *testing.T, shards int) *migrationTopology {
	t.Helper()
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	top := &migrationTopology{dir: t.TempDir()}
	for i := 0; i < shards; i++ {
		top.addShard(t, fmt.Sprintf("shard-%d", i))
	}
	rt, err := buildRouter(strings.Join(top.shardURLs, ","))
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(newRouterServer(rt, logger))
	t.Cleanup(router.Close)
	top.routerURL = router.URL
	return top
}

// addShard starts one more shard daemon (NOT attached to the ring) and
// returns its base URL.
func (top *migrationTopology) addShard(t *testing.T, name string) string {
	t.Helper()
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t)
	srv := newServer(f, "")
	st := newSnaplogStore(f, filepath.Join(top.dir, name+".snaplog"), logger)
	if err := st.compact(); err != nil {
		t.Fatal(err)
	}
	srv.snaplog = st
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	top.fleets = append(top.fleets, f)
	top.servers = append(top.servers, srv)
	top.shardURLs = append(top.shardURLs, ts.URL)
	return ts.URL
}

// routerSchedules fetches each node's schedule through the router,
// keyed by ID — the byte-identity comparator.
func routerSchedules(t *testing.T, routerURL string, ids []string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(ids))
	for _, id := range ids {
		resp, err := http.Get(routerURL + "/v1/schedule/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/schedule/%s: HTTP %d: %s", id, resp.StatusCode, body)
		}
		out[id] = body
	}
	return out
}

func postRing(t *testing.T, routerURL string, add, remove []string) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(ringChangeRequest{Add: add, Remove: remove})
	if err != nil {
		t.Fatal(err)
	}
	resp := mustPost(t, routerURL+"/v1/ring", body)
	return resp, readBody(t, resp)
}

// TestRebalancePreservesSchedules is the tentpole acceptance test: a
// routed 2-shard topology grows to 3 through POST /v1/ring while live
// load runs, and every pre-existing node's schedule comes back
// byte-identical afterwards — the handoff moved learned state, nothing
// relearned.
func TestRebalancePreservesSchedules(t *testing.T) {
	top := newMigrationTopology(t, 2)
	ids := ingestNodes(t, top.routerURL, 40)
	want := routerSchedules(t, top.routerURL, ids)
	nodesBefore := 0
	for _, f := range top.fleets {
		nodesBefore += f.Stats().Nodes
	}
	if nodesBefore != len(ids) {
		t.Fatalf("setup: shards hold %d nodes, ingested %d", nodesBefore, len(ids))
	}

	// Live load during the rebalance: observations to fresh nodes (a
	// pre-existing node's schedule may legitimately change if it learns
	// more) and schedule reads across the pre-existing set.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(observeRequest{Observations: []rushprobe.Observation{
					{Node: fmt.Sprintf("live-%d-%d", g, i%13), Time: float64(i%86400) + 1, Length: 1.5, Uploaded: -1},
				}})
				or := mustPost(t, top.routerURL+"/v1/observe", body)
				if or.StatusCode != http.StatusOK {
					t.Errorf("live observe during rebalance: HTTP %d: %s", or.StatusCode, readBody(t, or))
					return
				}
				readBody(t, or)
				sr, err := http.Get(top.routerURL + "/v1/schedule/" + ids[(g*7+i)%len(ids)])
				if err != nil {
					t.Errorf("live schedule read during rebalance: %v", err)
					return
				}
				if sr.StatusCode != http.StatusOK {
					t.Errorf("live schedule read during rebalance: HTTP %d", sr.StatusCode)
					readBody(t, sr)
					return
				}
				readBody(t, sr)
			}
		}(g)
	}

	thirdURL := top.addShard(t, "shard-2")
	resp, body := postRing(t, top.routerURL, []string{thirdURL}, nil)
	close(stop)
	wg.Wait()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/ring: HTTP %d: %s", resp.StatusCode, body)
	}
	var report struct {
		Shards        []string `json:"shards"`
		Moved         int      `json:"moved"`
		CleanupErrors []string `json:"cleanupErrors"`
	}
	if err := json.Unmarshal(body, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Shards) != 3 || report.Moved == 0 || len(report.CleanupErrors) != 0 {
		t.Fatalf("rebalance report %s", body)
	}

	// Membership reads back through GET /v1/ring.
	rresp, err := http.Get(top.routerURL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	var ring ringResponse
	if err := json.Unmarshal(readBody(t, rresp), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Shards) != 3 {
		t.Fatalf("GET /v1/ring after grow: %v", ring.Shards)
	}

	// The acceptance bar: zero relearns — byte-identical schedules for
	// every pre-existing node.
	for id, b := range routerSchedules(t, top.routerURL, ids) {
		if !bytes.Equal(b, want[id]) {
			t.Fatalf("schedule for %s changed across rebalance:\nbefore %s\nafter  %s", id, want[id], b)
		}
	}
	// The new shard took real state and the old owners gave it up.
	// (Stats().Nodes would overcount: live-load nodes land on shard-2
	// after the flip too, so count pre-existing IDs only. report.Moved
	// may exceed that count — a live-load node observed before the
	// rebalance enumerated its keys gets migrated like any other — so
	// the pre-existing movers are a lower bound, not an equality.)
	var movedIDs []string
	for _, id := range ids {
		if p, err := top.fleets[2].Profile(id); err == nil && p.Observations > 0 {
			movedIDs = append(movedIDs, id)
		}
	}
	if len(movedIDs) == 0 || len(movedIDs) > report.Moved {
		t.Fatalf("shard-2 holds %d pre-existing nodes, report says %d moved", len(movedIDs), report.Moved)
	}
	preExisting := 0
	for _, f := range top.fleets[:2] {
		for _, id := range ids {
			if p, err := f.Profile(id); err == nil && p.Observations > 0 {
				preExisting++
			}
		}
	}
	if preExisting+len(movedIDs) < len(ids) {
		t.Fatalf("lost nodes: %d still on old shards, %d moved, ingested %d", preExisting, len(movedIDs), len(ids))
	}

	// The import reached shard-2's snapshot log before the handoff
	// acknowledged: a fresh fleet restored from that log serves the
	// moved nodes' schedules identically — a crash right after the
	// commit loses nothing.
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	replay := newTestFleet(t)
	sb := newSnaplogStore(replay, filepath.Join(top.dir, "shard-2.snaplog"), logger)
	if restored, err := sb.restore(); err != nil || !restored {
		t.Fatalf("restore shard-2 log: restored=%v err=%v", restored, err)
	}
	if got, wantLive := schedulesOf(t, replay, movedIDs), schedulesOf(t, top.fleets[2], movedIDs); !bytes.Equal(got, wantLive) {
		t.Fatal("shard-2's log does not replay to its live post-import schedules")
	}
}

// killableShard fronts a real shard daemon but can be told to kill the
// connection mid-import — the network shape of a daemon dying (kill
// -9) in the middle of a handoff.
type killableShard struct {
	inner       http.Handler
	killImports atomic.Bool
}

func (k *killableShard) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if k.killImports.Load() && r.URL.Path == "/v1/migrate/import" {
		// Swallow part of the body, then abort the connection without a
		// response — exactly what the exporter sees when the importing
		// daemon is killed mid-handoff.
		buf := make([]byte, 1024)
		_, _ = r.Body.Read(buf)
		panic(http.ErrAbortHandler)
	}
	k.inner.ServeHTTP(w, r)
}

// TestRebalanceCrashMidHandoffConverges injects a crash into the
// import half of a handoff: the ring must not flip (old owners stay
// authoritative and keep serving identical schedules), and re-running
// the same membership change once the new daemon is back converges.
func TestRebalanceCrashMidHandoffConverges(t *testing.T) {
	top := newMigrationTopology(t, 2)
	ids := ingestNodes(t, top.routerURL, 30)
	want := routerSchedules(t, top.routerURL, ids)

	// The third daemon joins through a killable front, so the router
	// dials the front and the test can sever connections mid-import.
	top.addShard(t, "shard-2")
	kill := &killableShard{inner: top.servers[2]}
	kill.killImports.Store(true)
	proxy := httptest.NewServer(kill)
	t.Cleanup(proxy.Close)

	resp, body := postRing(t, top.routerURL, []string{proxy.URL}, nil)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("rebalance against a dying importer succeeded: %s", body)
	}
	if !strings.Contains(string(body), "still authoritative") {
		t.Fatalf("abort should name the authoritative shard: %s", body)
	}
	// Commit point not reached: membership unchanged, old owners serve
	// byte-identical schedules, the crashed shard admitted nothing.
	rresp, err := http.Get(top.routerURL + "/v1/ring")
	if err != nil {
		t.Fatal(err)
	}
	var ring ringResponse
	if err := json.Unmarshal(readBody(t, rresp), &ring); err != nil {
		t.Fatal(err)
	}
	if len(ring.Shards) != 2 {
		t.Fatalf("failed rebalance changed membership: %v", ring.Shards)
	}
	for id, b := range routerSchedules(t, top.routerURL, ids) {
		if !bytes.Equal(b, want[id]) {
			t.Fatalf("schedule for %s changed after an aborted handoff", id)
		}
	}
	if n := top.fleets[2].Stats().Nodes; n != 0 {
		t.Fatalf("crashed importer holds %d nodes", n)
	}

	// The daemon comes back; the same change re-runs and converges.
	kill.killImports.Store(false)
	resp, body = postRing(t, top.routerURL, []string{proxy.URL}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("converging re-run failed: HTTP %d: %s", resp.StatusCode, body)
	}
	if n := top.fleets[2].Stats().Nodes; n == 0 {
		t.Fatal("re-run moved nothing onto the recovered shard")
	}
	for id, b := range routerSchedules(t, top.routerURL, ids) {
		if !bytes.Equal(b, want[id]) {
			t.Fatalf("schedule for %s changed after the converging re-run", id)
		}
	}
}

// escapeNodeForURL mirrors the client-side escaping HTTPBackend uses:
// percent-escape the ID, with dot segments forced into escapes so the
// mux's path cleaner cannot rewrite them into a different route.
func escapeNodeForURL(node string) string {
	switch node {
	case ".":
		return "%2E"
	case "..":
		return "%2E%2E"
	}
	return url.PathEscape(node)
}

// TestRoutedAwkwardNodeIDsRoundTrip drives node IDs full of URL
// hazards — slashes, percent signs, spaces, dot segments — through the
// full chain: client → router (unescape) → HTTPBackend (re-escape) →
// shard daemon (unescape). Every hop must hand the next one the exact
// original ID.
func TestRoutedAwkwardNodeIDsRoundTrip(t *testing.T) {
	top := newMigrationTopology(t, 2)
	awkward := []string{"bus/42%full", "..", "a b+c", "tram#7?x=1", "%2F"}

	var batch []rushprobe.Observation
	for _, id := range awkward {
		for _, o := range traceObservations(t, "", 3, 4) {
			o.Node = id
			batch = append(batch, o)
		}
	}
	body, err := json.Marshal(observeRequest{Observations: batch})
	if err != nil {
		t.Fatal(err)
	}
	resp := mustPost(t, top.routerURL+"/v1/observe", body)
	var or observeResponse
	if err := json.Unmarshal(readBody(t, resp), &or); err != nil {
		t.Fatal(err)
	}
	if or.Accepted != len(batch) {
		t.Fatalf("accepted %d of %d observations for awkward IDs", or.Accepted, len(batch))
	}

	for _, id := range awkward {
		resp, err := http.Get(top.routerURL + "/v1/schedule/" + escapeNodeForURL(id))
		if err != nil {
			t.Fatal(err)
		}
		b := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET schedule for %q: HTTP %d: %s", id, resp.StatusCode, b)
		}
		var sched scheduleResponse
		if err := json.Unmarshal(b, &sched); err != nil {
			t.Fatal(err)
		}
		if sched.Node != id {
			t.Fatalf("schedule served for %q, asked for %q", sched.Node, id)
		}
		// The observations must have landed on the SAME identity the
		// schedule read resolves: the profile shows them.
		presp, err := http.Get(top.routerURL + "/v1/profile/" + escapeNodeForURL(id))
		if err != nil {
			t.Fatal(err)
		}
		pb := readBody(t, presp)
		if presp.StatusCode != http.StatusOK {
			t.Fatalf("GET profile for %q: HTTP %d: %s", id, presp.StatusCode, pb)
		}
		var prof rushprobe.NodeProfile
		if err := json.Unmarshal(pb, &prof); err != nil {
			t.Fatal(err)
		}
		if prof.Observations == 0 {
			t.Fatalf("profile for %q shows no observations: identity split across the chain", id)
		}
	}

	// A malformed escape must be rejected, never resolved to a
	// different node. Go's client refuses to even send such a URL, so
	// speak raw HTTP to prove the server side.
	conn, err := net.Dial("tcp", strings.TrimPrefix(top.routerURL, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "GET /v1/schedule/bad%%zz HTTP/1.0\r\nHost: router\r\n\r\n")
	raw, err := io.ReadAll(conn)
	conn.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "400") {
		t.Fatalf("malformed escape not rejected:\n%s", raw)
	}

	// Same round trip straight against a shard daemon (no router).
	direct, err := http.Get(top.shardURLs[0] + "/v1/schedule/" + escapeNodeForURL("bus/42%full"))
	if err != nil {
		t.Fatal(err)
	}
	db := readBody(t, direct)
	if direct.StatusCode != http.StatusOK {
		t.Fatalf("direct shard GET: HTTP %d: %s", direct.StatusCode, db)
	}
}

// TestRouterHealthzReportsPartialShardCoverage pins the healthz
// partiality contract: with a shard down, status degrades and
// shardsReporting < shardsTotal flags the merged counters as a partial
// view, never fleet truth.
func TestRouterHealthzReportsPartialShardCoverage(t *testing.T) {
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	up := httptest.NewServer(newServer(newTestFleet(t), ""))
	t.Cleanup(up.Close)
	down := httptest.NewServer(http.NotFoundHandler())
	downURL := down.URL
	down.Close() // nothing listens here anymore

	rt, err := buildRouter(up.URL + "," + downURL)
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(newRouterServer(rt, logger))
	t.Cleanup(router.Close)

	resp, err := http.Get(router.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr routerHealthResponse
	if err := json.Unmarshal(readBody(t, resp), &hr); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(hr.Status, "degraded") {
		t.Fatalf("healthz status %q with a shard down", hr.Status)
	}
	if hr.ShardsTotal != 2 || hr.ShardsReporting != 1 {
		t.Fatalf("healthz shard coverage %d/%d, want 1/2", hr.ShardsReporting, hr.ShardsTotal)
	}
	if len(hr.PerShard) != 1 {
		t.Fatalf("perShard should list only reporting shards, got %v", hr.PerShard)
	}
}
