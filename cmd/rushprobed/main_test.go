package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rushprobe"
	"rushprobe/internal/contact"
	"rushprobe/internal/rng"
	"rushprobe/internal/scenario"
	"rushprobe/internal/simtime"
)

func newTestFleet(t *testing.T) *rushprobe.Fleet {
	t.Helper()
	f, err := rushprobe.NewFleet(rushprobe.Roadside(rushprobe.WithZetaTarget(24)))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// traceObservations generates the road-side contact trace for one seed
// and labels it with the node ID.
func traceObservations(t *testing.T, node string, seed uint64, days int) []rushprobe.Observation {
	t.Helper()
	gen, err := contact.NewGenerator(scenario.Roadside(), rng.New(seed))
	if err != nil {
		t.Fatal(err)
	}
	contacts := gen.GenerateUntil(simtime.Instant(simtime.Duration(days) * simtime.Day))
	obs := make([]rushprobe.Observation, len(contacts))
	for i, c := range contacts {
		obs[i] = rushprobe.Observation{Node: node, Time: c.Start.Seconds(), Length: c.Length.Seconds(), Uploaded: -1}
	}
	return obs
}

func mustPost(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestEndToEndThousandNodesRestartFromSnapshot is the daemon's
// acceptance test: ingest tracegen-style traces for 1000 nodes over
// HTTP, fetch every schedule, snapshot, restart a fresh daemon from the
// snapshot, and verify it serves byte-identical schedules.
func TestEndToEndThousandNodesRestartFromSnapshot(t *testing.T) {
	const (
		nodes         = 1000
		distinctSeeds = 50
		days          = 4
		batchNodes    = 25 // nodes per observe request
	)
	snapPath := filepath.Join(t.TempDir(), "fleet.snap")
	srv1 := httptest.NewServer(newServer(newTestFleet(t), snapPath))
	defer srv1.Close()

	// Generate one trace per distinct seed and fan each out to
	// nodes/distinctSeeds node IDs — realistic (distinct nodes share
	// mobility patterns) and it exercises cache sharing at scale.
	seedObs := make([][]rushprobe.Observation, distinctSeeds)
	for s := range seedObs {
		seedObs[s] = traceObservations(t, "", uint64(s+1), days)
	}
	var batch []rushprobe.Observation
	for n := 0; n < nodes; n++ {
		id := fmt.Sprintf("node-%04d", n)
		for _, o := range seedObs[n%distinctSeeds] {
			o.Node = id
			batch = append(batch, o)
		}
		if (n+1)%batchNodes == 0 {
			body, err := json.Marshal(observeRequest{Observations: batch})
			if err != nil {
				t.Fatal(err)
			}
			resp := mustPost(t, srv1.URL+"/v1/observe", body)
			var or observeResponse
			if err := json.Unmarshal(readBody(t, resp), &or); err != nil {
				t.Fatal(err)
			}
			if or.Accepted != len(batch) {
				t.Fatalf("batch ending at node %d: accepted %d of %d", n, or.Accepted, len(batch))
			}
			batch = batch[:0]
		}
	}

	schedules := make(map[string]string, nodes)
	learned := 0
	for n := 0; n < nodes; n++ {
		id := fmt.Sprintf("node-%04d", n)
		resp, err := http.Get(srv1.URL + "/v1/schedule/" + id)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("schedule %s: HTTP %d: %s", id, resp.StatusCode, body)
		}
		schedules[id] = string(body)
		var sr scheduleResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("schedule %s: %v", id, err)
		}
		if sr.Mechanism == string(rushprobe.SNIPOPT) {
			learned++
		}
	}
	// Four days of observations complete three epochs — every node must
	// have graduated from bootstrap.
	if learned != nodes {
		t.Fatalf("%d of %d nodes serve learned plans", learned, nodes)
	}

	var hr healthResponse
	resp, err := http.Get(srv1.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(readBody(t, resp), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Nodes != nodes {
		t.Fatalf("healthz nodes = %d, want %d", hr.Nodes, nodes)
	}
	// The plan cache must collapse the fleet to (at most) one solve per
	// distinct mobility pattern.
	if hr.PlanSolves > distinctSeeds {
		t.Fatalf("plan solves = %d, want <= %d distinct patterns", hr.PlanSolves, distinctSeeds)
	}
	if wantHits := int64(nodes) - hr.PlanSolves; hr.PlanCacheHits < wantHits {
		t.Fatalf("plan cache hits = %d, want >= %d", hr.PlanCacheHits, wantHits)
	}

	// Snapshot over HTTP, then "restart": a fresh fleet restored from
	// the file must serve byte-identical schedules.
	resp = mustPost(t, srv1.URL+"/v1/snapshot", nil)
	if body := readBody(t, resp); resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: HTTP %d: %s", resp.StatusCode, body)
	}
	f2 := newTestFleet(t)
	if err := loadSnapshot(f2, snapPath); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(newServer(f2, ""))
	defer srv2.Close()
	for id, want := range schedules {
		resp, err := http.Get(srv2.URL + "/v1/schedule/" + id)
		if err != nil {
			t.Fatal(err)
		}
		if got := string(readBody(t, resp)); got != want {
			t.Fatalf("node %s schedule changed across restart:\n got %s\nwant %s", id, got, want)
		}
	}
}

func TestColdNodeScheduleNever500s(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestFleet(t), ""))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/schedule/brand-new-node")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold node: HTTP %d: %s", resp.StatusCode, body)
	}
	var sr scheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Mechanism != string(rushprobe.SNIPAT) {
		t.Fatalf("cold node mechanism = %s, want bootstrap %s", sr.Mechanism, rushprobe.SNIPAT)
	}
	if len(sr.Duty) != 24 {
		t.Fatalf("cold node duty has %d slots, want 24", len(sr.Duty))
	}
}

// TestUnknownRouteReturnsJSONError is the regression test for the
// empty-body 404: every unrouted path must answer with the API's JSON
// error payload, not the mux's default text/plain page.
func TestUnknownRouteReturnsJSONError(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestFleet(t), ""))
	defer srv.Close()
	for _, path := range []string{"/v1/nodes/n1", "/v1/schedul/n1", "/nope", "/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body := readBody(t, resp)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: HTTP %d, want 404", path, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("GET %s: Content-Type %q, want application/json", path, ct)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil {
			t.Fatalf("GET %s: body %q is not the JSON error shape: %v", path, body, err)
		}
		if er.Error == "" {
			t.Fatalf("GET %s: empty error message", path)
		}
	}
}

// TestStrategyEndpoint covers per-node strategy selection over HTTP:
// setting an alias canonicalizes it, the served schedule switches plan
// family, unknown strategies 400, and /v1/strategies lists the
// registry.
func TestStrategyEndpoint(t *testing.T) {
	f := newTestFleet(t)
	srv := httptest.NewServer(newServer(f, ""))
	defer srv.Close()

	// Past bootstrap so learned plans are served (default 3 epochs).
	obs := traceObservations(t, "n1", 3, 5)
	body, err := json.Marshal(observeRequest{Observations: obs})
	if err != nil {
		t.Fatal(err)
	}
	if resp := mustPost(t, srv.URL+"/v1/observe", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: HTTP %d", resp.StatusCode)
	} else {
		readBody(t, resp)
	}

	resp := mustPost(t, srv.URL+"/v1/strategy/n1", []byte(`{"strategy":"rh"}`))
	data := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("set strategy: HTTP %d: %s", resp.StatusCode, data)
	}
	var sr strategyResponse
	if err := json.Unmarshal(data, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Node != "n1" || sr.Strategy != string(rushprobe.SNIPRH) {
		t.Fatalf("set strategy = %+v, want n1 serving %s", sr, rushprobe.SNIPRH)
	}

	schedResp, err := http.Get(srv.URL + "/v1/schedule/n1")
	if err != nil {
		t.Fatal(err)
	}
	var sched scheduleResponse
	if err := json.Unmarshal(readBody(t, schedResp), &sched); err != nil {
		t.Fatal(err)
	}
	if sched.Mechanism != string(rushprobe.SNIPRH) {
		t.Fatalf("schedule after override serves %s, want %s", sched.Mechanism, rushprobe.SNIPRH)
	}

	if resp := mustPost(t, srv.URL+"/v1/strategy/n1", []byte(`{"strategy":"SNIP-BOGUS"}`)); resp.StatusCode != http.StatusBadRequest {
		readBody(t, resp)
		t.Fatalf("unknown strategy: HTTP %d, want 400", resp.StatusCode)
	} else {
		readBody(t, resp)
	}
	if resp := mustPost(t, srv.URL+"/v1/strategy/", []byte(`{"strategy":"rh"}`)); resp.StatusCode != http.StatusBadRequest {
		readBody(t, resp)
		t.Fatalf("missing node: HTTP %d, want 400", resp.StatusCode)
	} else {
		readBody(t, resp)
	}

	listResp, err := http.Get(srv.URL + "/v1/strategies")
	if err != nil {
		t.Fatal(err)
	}
	var lr strategiesResponse
	if err := json.Unmarshal(readBody(t, listResp), &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Strategies) < 4 {
		t.Fatalf("strategies list = %v, want at least the paper's four", lr.Strategies)
	}
}

func TestObserveEndpointValidation(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestFleet(t), ""))
	defer srv.Close()
	resp := mustPost(t, srv.URL+"/v1/observe", []byte("{not json"))
	if readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: HTTP %d, want 400", resp.StatusCode)
	}
	getResp, err := http.Get(srv.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, getResp); getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observe: HTTP %d, want 405", getResp.StatusCode)
	}
}

func TestScheduleRequiresNodeID(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestFleet(t), ""))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/schedule/")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing node: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestSnapshotEndpointRequiresPath(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestFleet(t), ""))
	defer srv.Close()
	resp := mustPost(t, srv.URL+"/v1/snapshot", nil)
	if readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("snapshot without -snapshot: HTTP %d, want 400", resp.StatusCode)
	}
}

func TestProfileEndpoint(t *testing.T) {
	f := newTestFleet(t)
	srv := httptest.NewServer(newServer(f, ""))
	defer srv.Close()
	f.Observe(traceObservations(t, "n1", 3, 2))
	resp, err := http.Get(srv.URL + "/v1/profile/n1")
	if err != nil {
		t.Fatal(err)
	}
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: HTTP %d: %s", resp.StatusCode, body)
	}
	var prof rushprobe.NodeProfile
	if err := json.Unmarshal(body, &prof); err != nil {
		t.Fatal(err)
	}
	if prof.Observations == 0 || len(prof.SlotCapacity) != 24 {
		t.Fatalf("profile = %+v, want observations and 24 slot capacities", prof)
	}
}

// TestSmokeMode runs the -smoke path end to end, including reading a
// tracegen-format CSV.
func TestSmokeMode(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-smoke-nodes", "4"}, &out); err != nil {
		t.Fatalf("smoke: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "smoke: OK") {
		t.Fatalf("smoke output missing OK: %s", out.String())
	}
}

func TestSmokeModeWithTraceFile(t *testing.T) {
	// Write a small CSV in tracegen's format.
	path := filepath.Join(t.TempDir(), "trace.csv")
	var sb strings.Builder
	sb.WriteString("start_s,length_s\n")
	for d := 0; d < 4; d++ {
		for h := 0; h < 24; h++ {
			sb.WriteString(fmt.Sprintf("%d,2\n", d*86400+h*3600+30))
		}
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"-smoke", "-smoke-nodes", "2", "-trace", path}, &out); err != nil {
		t.Fatalf("smoke with trace: %v\n%s", err, out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-mechanism", "SNIP-XX"}, io.Discard); err == nil {
		t.Error("bad mechanism accepted")
	}
	if err := run([]string{"-smoke", "-smoke-nodes", "0"}, io.Discard); err == nil {
		t.Error("zero smoke nodes accepted")
	}
}

// TestLoadSnapshotSurfacesCorruptFiles: a snapshot file that exists but
// cannot be restored must be a clear startup error naming the path — a
// silent fresh start would throw away the whole fleet's learned state.
// An empty file is the classic crash artifact: pre-fsync, a crash
// right after the rename could leave exactly that on disk.
func TestLoadSnapshotSurfacesCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"truncated.json": `{"version":1,"baseFingerprint":"0","nodes":[{"id":"n1","ep`,
		"garbage.json":   "not json at all\n",
		"empty.json":     "",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		err := loadSnapshot(newTestFleet(t), path)
		if err == nil {
			t.Errorf("%s: corrupt snapshot restored silently", name)
			continue
		}
		if !strings.Contains(err.Error(), path) {
			t.Errorf("%s: error %q does not name the snapshot path", name, err)
		}
	}
	// A missing file stays a fresh start.
	if err := loadSnapshot(newTestFleet(t), filepath.Join(dir, "absent.json")); err != nil {
		t.Errorf("missing snapshot must be a fresh start, got %v", err)
	}
}

// TestSaveLoadSnapshotRoundTrip: saveSnapshot's fsync+rename output
// must be exactly what loadSnapshot restores.
func TestSaveLoadSnapshotRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	f := newTestFleet(t)
	f.Observe(traceObservations(t, "n1", 7, 5))
	if err := saveSnapshot(f, path); err != nil {
		t.Fatal(err)
	}
	restored := newTestFleet(t)
	if err := loadSnapshot(restored, path); err != nil {
		t.Fatal(err)
	}
	want, err := f.Schedule("n1")
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Schedule("n1")
	if err != nil {
		t.Fatal(err)
	}
	if want.Fingerprint != got.Fingerprint || want.Mechanism != got.Mechanism {
		t.Fatalf("restored schedule differs: %+v vs %+v", got, want)
	}
	// No temp files may linger next to the snapshot.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("snapshot directory has %d entries, want only the snapshot", len(entries))
	}
}
