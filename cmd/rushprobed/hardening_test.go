package main

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"rushprobe"
)

// TestMetricsEndpoint scrapes /metrics end to end: ingest a trace,
// fetch a schedule, set a strategy override, and check the exposition
// carries the fleet's counters and the per-strategy node gauge.
func TestMetricsEndpoint(t *testing.T) {
	f, err := rushprobe.NewFleet(
		rushprobe.Roadside(rushprobe.WithZetaTarget(24)),
		rushprobe.WithDriftDetector("cusum"),
	)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newServer(f, ""))
	defer srv.Close()

	obs := traceObservations(t, "metrics-node", 1, 4)
	body, err := json.Marshal(observeRequest{Observations: obs})
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, mustPost(t, srv.URL+"/v1/observe", body))
	resp, err := http.Get(srv.URL + "/v1/schedule/metrics-node")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	readBody(t, mustPost(t, srv.URL+"/v1/strategy/metrics-node", []byte(`{"strategy":"SNIP-RH"}`)))

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	// Exact match: Prometheus scrapers negotiate on the version parameter,
	// so a drifting content type is a real interop regression.
	if ct := resp.Header.Get("Content-Type"); ct != expositionContentType {
		t.Fatalf("content type %q, want exactly %q", ct, expositionContentType)
	}
	text := string(readBody(t, resp))
	for _, want := range []string{
		"rushprobe_nodes 1\n",
		"rushprobe_observations_accepted_total " + strconv.Itoa(len(obs)) + "\n",
		"rushprobe_plan_solves_total ",
		"rushprobe_drift_events_total 0\n",
		"rushprobe_observe_shed_total 0\n",
		"rushprobe_observe_inflight 0\n",
		`rushprobe_strategy_nodes{strategy="SNIP-RH"} 1` + "\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	if !strings.Contains(text, "# TYPE rushprobe_observations_accepted_total counter") {
		t.Error("metrics missing TYPE line for the accepted counter")
	}
}

// TestObserveShedsAtCapacity fills the ingest semaphore and checks the
// daemon turns the next observe away with 429 + Retry-After, keeps
// serving reads, counts the shed in /metrics, and accepts again once a
// slot frees.
func TestObserveShedsAtCapacity(t *testing.T) {
	s := newServer(newTestFleet(t), "")
	s.observeSem = make(chan struct{}, 1)
	srv := httptest.NewServer(s)
	defer srv.Close()

	body, err := json.Marshal(observeRequest{Observations: []rushprobe.Observation{
		{Node: "shed-node", Time: 30, Length: 2, Uploaded: -1},
	}})
	if err != nil {
		t.Fatal(err)
	}

	s.observeSem <- struct{}{} // occupy the only ingest slot
	resp := mustPost(t, srv.URL+"/v1/observe", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d with ingest at capacity, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	var er errorResponse
	if err := json.Unmarshal(readBody(t, resp), &er); err != nil || er.Error == "" {
		t.Fatalf("shed response is not the JSON error shape: %v %q", err, er.Error)
	}

	// Reads stay responsive while ingest is saturated.
	hresp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz %d during ingest saturation, want 200", hresp.StatusCode)
	}
	readBody(t, hresp)

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if text := string(readBody(t, mresp)); !strings.Contains(text, "rushprobe_observe_shed_total 1\n") {
		t.Errorf("metrics did not count the shed request:\n%s", text)
	}

	<-s.observeSem // free the slot
	resp = mustPost(t, srv.URL+"/v1/observe", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d after draining, want 200", resp.StatusCode)
	}
	var or observeResponse
	if err := json.Unmarshal(readBody(t, resp), &or); err != nil || or.Accepted != 1 {
		t.Fatalf("post-drain observe: %v %+v", err, or)
	}
}

// TestHTTPServerTimeoutsConfigured pins the production listener
// timeouts: every serving path builds through newHTTPServer, so a zero
// here would reopen the unbounded-connection regression.
func TestHTTPServerTimeoutsConfigured(t *testing.T) {
	srv := newHTTPServer(http.NotFoundHandler())
	if srv.ReadHeaderTimeout <= 0 || srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Fatalf("listener timeouts not fully configured: %+v", srv)
	}
}

// TestSlowClientEvicted drives the slowloris scenario against a real
// listener: a client that dribbles a partial request line and then
// stalls must have its connection closed by ReadHeaderTimeout, not
// held open indefinitely.
func TestSlowClientEvicted(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := newHTTPServer(newServer(newTestFleet(t), ""))
	httpSrv.ReadHeaderTimeout = 150 * time.Millisecond // production value, compressed for the test
	go httpSrv.Serve(ln)
	defer httpSrv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /v1/healthz HT")); err != nil {
		t.Fatal(err)
	}
	// Stall mid-request-line; the server must hang up on its own.
	if err := conn.SetReadDeadline(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	// The server may write a 408 before hanging up; drain until the
	// connection is closed and check the eviction happened quickly.
	start := time.Now()
	buf := make([]byte, 512)
	for {
		if _, err := conn.Read(buf); err != nil {
			break
		}
	}
	if waited := time.Since(start); waited >= 5*time.Second {
		t.Fatalf("connection still open after %v; ReadHeaderTimeout did not evict", waited)
	}
}
