package main

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rushprobe"
)

// newTelemeteredFleet builds a fleet armed with a telemetry bundle, as
// run() does for the real daemon.
func newTelemeteredFleet(t *testing.T, cfg rushprobe.TelemetryConfig) *rushprobe.Fleet {
	t.Helper()
	f, err := rushprobe.NewFleet(
		rushprobe.Roadside(rushprobe.WithZetaTarget(24)),
		rushprobe.WithTelemetry(rushprobe.NewTelemetry(cfg)),
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestMetricsExpositionStrict drives the daemon end to end and then
// holds /metrics to the same bar CI's smoke step uses: the exposition
// must parse under the strict text-format parser, carry every required
// family, and its histograms must be internally coherent with real
// observations in them.
func TestMetricsExpositionStrict(t *testing.T) {
	f := newTelemeteredFleet(t, rushprobe.TelemetryConfig{})
	srv := httptest.NewServer(newServer(f, ""))
	defer srv.Close()

	obs := traceObservations(t, "tel-node", 2, 4)
	body, err := json.Marshal(observeRequest{Observations: obs})
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, mustPost(t, srv.URL+"/v1/observe", body))
	resp, err := http.Get(srv.URL + "/v1/schedule/tel-node")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)

	fams, err := scrapeMetrics(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range requiredFamilies {
		if _, ok := fams[name]; !ok {
			t.Errorf("exposition missing required family %s", name)
		}
	}
	for _, name := range []string{
		"rushprobe_ingest_batch_seconds",
		"rushprobe_schedule_seconds",
		"rushprobe_solve_seconds",
		"rushprobe_advance_epoch_seconds",
	} {
		fam, ok := fams[name]
		if !ok {
			t.Fatalf("exposition missing stage histogram %s", name)
		}
		if err := fam.ValidateHistogram(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	if h := fams["rushprobe_ingest_batch_seconds"].Histogram(); h.Count < 1 {
		t.Errorf("ingest histogram empty after an observe batch")
	}
	if h := fams["rushprobe_schedule_seconds"].Histogram(); h.Count < 1 {
		t.Errorf("schedule histogram empty after a schedule fetch")
	}
	// Capacity and runtime gauges ride the same scrape.
	if fam, ok := fams["rushprobe_profile_bytes_per_node"]; !ok || len(fam.Samples) == 0 {
		t.Error("bytes-per-node gauge missing or empty")
	}
	if _, ok := fams["rushprobe_goroutines"]; !ok {
		t.Error("runtime goroutine gauge missing")
	}
	if _, ok := fams["rushprobe_shard_nodes"]; !ok {
		t.Error("shard-balance gauge missing")
	}
}

// TestTracesEndpoint checks the request-tracing loop: every response
// carries an X-Request-ID, and /debug/traces returns spans (newest
// first) whose fleet stages carry the same request ID as their http
// parent.
func TestTracesEndpoint(t *testing.T) {
	f := newTelemeteredFleet(t, rushprobe.TelemetryConfig{})
	srv := httptest.NewServer(newServer(f, ""))
	defer srv.Close()

	obs := traceObservations(t, "trace-node", 5, 2)
	body, err := json.Marshal(observeRequest{Observations: obs})
	if err != nil {
		t.Fatal(err)
	}
	resp := mustPost(t, srv.URL+"/v1/observe", body)
	observeID := resp.Header.Get("X-Request-ID")
	readBody(t, resp)
	if observeID == "" {
		t.Fatal("observe response has no X-Request-ID")
	}

	resp, err = http.Get(srv.URL + "/debug/traces?n=50")
	if err != nil {
		t.Fatal(err)
	}
	var tr tracesResponse
	if err := json.Unmarshal(readBody(t, resp), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Total == 0 || len(tr.Spans) == 0 {
		t.Fatalf("trace ring empty: %+v", tr)
	}
	// Newest first: the traces request itself is recorded after the
	// observe, so the observe's spans must come later in the slice.
	stagesForObserve := map[string]bool{}
	for _, sp := range tr.Spans {
		if sp.Request == observeID {
			stagesForObserve[sp.Stage] = true
		}
	}
	if !stagesForObserve["http"] || !stagesForObserve["ingest"] {
		t.Fatalf("observe request %s missing http/ingest spans; got stages %v", observeID, stagesForObserve)
	}

	// Bad n is a 400, not a panic or a silent default.
	resp, err = http.Get(srv.URL + "/debug/traces?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	if readBody(t, resp); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestHealthzSnapshotBlock covers the snapshot observability surface
// end to end: a fresh daemon with -snapshot reports configured but not
// restored, a save stamps age/duration and counts, and a restarted
// daemon reports restoredAtStartup.
func TestHealthzSnapshotBlock(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "fleet.snap")
	f := newTestFleet(t)
	s := newServer(f, snapPath)
	if err := s.restoreSnapshot(); err != nil { // missing file: fresh start
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	var hr healthResponse
	readHealth := func() {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/healthz")
		if err != nil {
			t.Fatal(err)
		}
		hr = healthResponse{}
		if err := json.Unmarshal(readBody(t, resp), &hr); err != nil {
			t.Fatal(err)
		}
	}
	readHealth()
	if !hr.Snapshot.Configured || hr.Snapshot.RestoredAtStartup {
		t.Fatalf("fresh daemon snapshot block: %+v, want configured and not restored", hr.Snapshot)
	}
	if hr.Snapshot.Saves != 0 || hr.Snapshot.LastSaveAgeSeconds != -1 {
		t.Fatalf("fresh daemon reports saves: %+v", hr.Snapshot)
	}

	f.Observe(traceObservations(t, "n1", 11, 4))
	readBody(t, mustPost(t, srv.URL+"/v1/snapshot", nil))
	readHealth()
	if hr.Snapshot.Saves != 1 {
		t.Fatalf("after one save, saves = %d", hr.Snapshot.Saves)
	}
	if hr.Snapshot.LastSaveAgeSeconds < 0 || hr.Snapshot.LastSaveAgeSeconds > 60 {
		t.Fatalf("save age %.3fs out of range", hr.Snapshot.LastSaveAgeSeconds)
	}
	if hr.Snapshot.LastSaveDurationSeconds <= 0 {
		t.Fatalf("save duration %.9fs, want > 0", hr.Snapshot.LastSaveDurationSeconds)
	}

	// "Restart": a fresh server over the same path restores at startup.
	s2 := newServer(newTestFleet(t), snapPath)
	if err := s2.restoreSnapshot(); err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	resp, err := http.Get(srv2.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr2 healthResponse
	if err := json.Unmarshal(readBody(t, resp), &hr2); err != nil {
		t.Fatal(err)
	}
	if !hr2.Snapshot.RestoredAtStartup {
		t.Fatalf("restarted daemon snapshot block: %+v, want restoredAtStartup", hr2.Snapshot)
	}
	if hr2.Snapshot.LastRestoreDurationSeconds <= 0 {
		t.Fatalf("restore duration %.9fs, want > 0", hr2.Snapshot.LastRestoreDurationSeconds)
	}
	if hr2.Nodes != 1 {
		t.Fatalf("restored daemon tracks %d nodes, want 1", hr2.Nodes)
	}
}

// TestSlowRequestLogged pins the -slow-request auto-log: with a
// threshold every request exceeds, handling any request must emit a
// structured "slow span" record carrying the request ID and route.
func TestSlowRequestLogged(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	f := newTelemeteredFleet(t, rushprobe.TelemetryConfig{SlowSpan: time.Nanosecond, Logger: logger})
	srv := httptest.NewServer(newServer(f, ""))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	readBody(t, resp)
	id := resp.Header.Get("X-Request-ID")
	logs := logBuf.String()
	if !strings.Contains(logs, "slow span") {
		t.Fatalf("no slow-span record logged:\n%s", logs)
	}
	if !strings.Contains(logs, id) || !strings.Contains(logs, "/v1/healthz") {
		t.Fatalf("slow-span record missing request ID %q or route:\n%s", id, logs)
	}
}

// TestUntelemeteredFleetStillServesMetrics: a server over a fleet
// without WithTelemetry (library embedding, old tests) must still
// expose the full exposition shape — stage histograms just stay empty.
func TestUntelemeteredFleetStillServesMetrics(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestFleet(t), ""))
	defer srv.Close()
	fams, err := scrapeMetrics(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fam, ok := fams["rushprobe_ingest_batch_seconds"]
	if !ok {
		t.Fatal("untelemetered server dropped the ingest histogram family")
	}
	if err := fam.ValidateHistogram(); err != nil {
		t.Fatal(err)
	}
	if h := fam.Histogram(); h.Count != 0 {
		t.Fatalf("detached histogram counted %v observations", h.Count)
	}
}

// TestNewLoggerFlagValidation rejects unknown formats and levels.
func TestNewLoggerFlagValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := newLogger(&buf, "yaml", "info"); err == nil {
		t.Error("unknown log format accepted")
	}
	if _, err := newLogger(&buf, "json", "loud"); err == nil {
		t.Error("unknown log level accepted")
	}
	logger, err := newLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	logger.Info("hidden")
	logger.Warn("visible", "k", "v")
	out := buf.String()
	if strings.Contains(out, "hidden") || !strings.Contains(out, "visible") {
		t.Fatalf("level filtering wrong:\n%s", out)
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(strings.TrimSpace(out)), &rec); err != nil {
		t.Fatalf("JSON handler emitted non-JSON: %v\n%s", err, out)
	}
	if rec["k"] != "v" {
		t.Fatalf("structured attr lost: %v", rec)
	}
}
