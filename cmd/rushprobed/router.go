package main

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rushprobe"
	"rushprobe/internal/shardroute"
	"rushprobe/internal/telemetry"
)

// routerServer serves the daemon's API in -route mode: the same
// endpoints, but every request scatters to the shard daemons owning
// the nodes instead of touching a local fleet. The router holds no
// learned state of its own — each shard persists its own snapshot.
type routerServer struct {
	rt       *shardroute.Router
	mux      *http.ServeMux
	logger   *slog.Logger
	registry *telemetry.Registry
	start    time.Time
	reqSeq   atomic.Uint64

	requestTimeout time.Duration
}

func newRouterServer(rt *shardroute.Router, logger *slog.Logger) *routerServer {
	s := &routerServer{
		rt:             rt,
		mux:            http.NewServeMux(),
		logger:         logger,
		registry:       telemetry.NewRegistry(),
		start:          time.Now(),
		requestTimeout: defaultRequestTimeout,
	}
	s.registry.AddFunc(rt.Collect)
	telemetry.RegisterRuntime(s.registry)
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	s.mux.HandleFunc("/v1/schedule/", s.handleSchedule)
	s.mux.HandleFunc("/v1/schedules", s.handleSchedules)
	s.mux.HandleFunc("/v1/profile/", s.handleProfile)
	s.mux.HandleFunc("/v1/strategy/", s.handleStrategy)
	s.mux.HandleFunc("/v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("/v1/ring", s.handleRing)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
	})
	return s
}

func (s *routerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()
	}
	id := "req-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	ctx = telemetry.WithRequestID(ctx, id)
	w.Header().Set("X-Request-ID", id)
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

func (s *routerServer) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req observeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	accepted, err := s.rt.Observe(r.Context(), req.Observations)
	if err != nil {
		// Partial scatter failure: some shards folded their slice, some
		// did not. Surface it as a bad gateway with the accepted count
		// so reporters know what landed.
		s.logger.Warn("routed observe failed on some shards", "accepted", accepted, "err", err)
		writeError(w, http.StatusBadGateway, "observe: accepted %d of %d: %v", accepted, len(req.Observations), err)
		return
	}
	writeJSON(w, http.StatusOK, observeResponse{Received: len(req.Observations), Accepted: accepted})
}

func (s *routerServer) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node, err := nodeParam(r, "/v1/schedule/")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	sched, err := s.rt.Schedule(r.Context(), node)
	if err != nil {
		writeError(w, http.StatusBadGateway, "schedule: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, scheduleResponse{Node: node, Schedule: sched})
}

func (s *routerServer) handleSchedules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req schedulesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSchedulesBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	scheds, err := s.rt.ScheduleBatch(r.Context(), req.Nodes)
	if err != nil {
		writeError(w, http.StatusBadGateway, "schedules: %v", err)
		return
	}
	if scheds == nil {
		scheds = []*rushprobe.Schedule{}
	}
	writeJSON(w, http.StatusOK, schedulesResponse{Schedules: scheds})
}

func (s *routerServer) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node, err := nodeParam(r, "/v1/profile/")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	prof, err := s.rt.Profile(r.Context(), node)
	if err != nil {
		writeError(w, http.StatusBadGateway, "profile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

func (s *routerServer) handleStrategy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	node, err := nodeParam(r, "/v1/strategy/")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	var req strategyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	inForce, err := s.rt.SetStrategy(r.Context(), node, req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadGateway, "strategy: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, strategyResponse{Node: node, Strategy: inForce})
}

func (s *routerServer) handleStrategies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, strategiesResponse{Strategies: rushprobe.Strategies()})
}

// routerHealthResponse is router-mode healthz: merged fleet counters
// plus the shard roster, so operators see both the whole and the
// parts. ShardsReporting < ShardsTotal marks the merged counters as a
// partial sum over the shards that answered — never fleet truth when
// any shard is down.
type routerHealthResponse struct {
	Status          string   `json:"status"`
	UptimeSeconds   float64  `json:"uptimeSeconds"`
	Shards          []string `json:"shards"`
	ShardsTotal     int      `json:"shardsTotal"`
	ShardsReporting int      `json:"shardsReporting"`
	rushprobe.FleetStats
	PerShard map[string]rushprobe.FleetStats `json:"perShard"`
}

func (s *routerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	shards := s.rt.Shards()
	per, perErr := s.rt.ShardStats(r.Context())
	var total rushprobe.FleetStats
	for _, st := range per {
		total.Nodes += st.Nodes
		total.Observations += st.Observations
		total.Stale += st.Stale
		total.Invalid += st.Invalid
		total.PlanSolves += st.PlanSolves
		total.PlanCacheHits += st.PlanCacheHits
		total.CachedPlans += st.CachedPlans
		total.DriftEvents += st.DriftEvents
	}
	status := "ok"
	if perErr != nil {
		status = "degraded: " + perErr.Error()
	}
	writeJSON(w, http.StatusOK, routerHealthResponse{
		Status:          status,
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Shards:          shards,
		ShardsTotal:     len(shards),
		ShardsReporting: len(per),
		FleetStats:      total,
		PerShard:        per,
	})
}

// ringResponse is the GET /v1/ring body (and the membership echo of a
// successful POST, inside rebalanceResponse).
type ringResponse struct {
	Shards []string `json:"shards"`
}

// ringChangeRequest is the POST /v1/ring body: shard base URLs to
// attach and/or detach. Entries are normalized exactly like the -route
// flag, so the same spelling addresses the same shard.
type ringChangeRequest struct {
	Add    []string `json:"add,omitempty"`
	Remove []string `json:"remove,omitempty"`
}

// handleRing reads (GET) or changes (POST) the ring membership. A POST
// runs a full Rebalance: learned state drains from old owners to new
// before the ring flips, so every already-learned node keeps its
// schedule across the change (see shardroute.Router.Rebalance).
func (s *routerServer) handleRing(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, ringResponse{Shards: s.rt.Shards()})
	case http.MethodPost:
		var req ringChangeRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decode: %v", err)
			return
		}
		add := make(map[string]shardroute.Backend, len(req.Add))
		for _, raw := range req.Add {
			u := normalizeShardURL(raw)
			if u == "" {
				writeError(w, http.StatusBadRequest, "empty shard URL in add list")
				return
			}
			add[u] = &shardroute.HTTPBackend{BaseURL: u}
		}
		remove := make([]string, 0, len(req.Remove))
		for _, raw := range req.Remove {
			u := normalizeShardURL(raw)
			if u == "" {
				writeError(w, http.StatusBadRequest, "empty shard URL in remove list")
				return
			}
			remove = append(remove, u)
		}
		report, err := s.rt.Rebalance(r.Context(), add, remove)
		if err != nil {
			s.logger.Warn("rebalance failed", "err", err, "request", telemetry.RequestID(r.Context()))
			writeError(w, http.StatusBadGateway, "rebalance: %v", err)
			return
		}
		s.logger.Info("rebalance committed",
			"shards", len(report.Shards), "moved", report.Moved,
			"cleanupErrors", len(report.CleanupErrors),
			"request", telemetry.RequestID(r.Context()))
		writeJSON(w, http.StatusOK, report)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST required")
	}
}

type routerSnapshotResponse struct {
	Shards int `json:"shards"`
}

func (s *routerServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := s.rt.PersistSnapshots(r.Context()); err != nil {
		writeError(w, http.StatusBadGateway, "snapshot fan-out: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, routerSnapshotResponse{Shards: len(s.rt.Shards())})
}

func (s *routerServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", expositionContentType)
	w.WriteHeader(http.StatusOK)
	_ = s.registry.WriteText(w)
}

// normalizeShardURL canonicalizes one shard base URL the way the
// -route flag always has: trim whitespace, default the scheme to
// http://, strip trailing slashes. The -route flag and POST /v1/ring
// share it, so the same spelling always names the same ring member.
func normalizeShardURL(raw string) string {
	u := strings.TrimSpace(raw)
	if u == "" {
		return ""
	}
	if !strings.Contains(u, "://") {
		u = "http://" + u
	}
	return strings.TrimRight(u, "/")
}

// buildRouter wires the -route shard list (comma-separated base URLs)
// into a consistent-hash router over HTTP backends. Shard names are
// the URLs themselves, so the ring is a pure function of the flag.
func buildRouter(shardList string) (*shardroute.Router, error) {
	rt := shardroute.NewRouter(0, nil)
	for _, raw := range strings.Split(shardList, ",") {
		u := normalizeShardURL(raw)
		if u == "" {
			continue
		}
		if err := rt.AddShard(u, &shardroute.HTTPBackend{BaseURL: u}); err != nil {
			return nil, err
		}
	}
	return rt, nil
}
