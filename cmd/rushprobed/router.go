package main

import (
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"rushprobe"
	"rushprobe/internal/shardroute"
	"rushprobe/internal/telemetry"
)

// routerServer serves the daemon's API in -route mode: the same
// endpoints, but every request scatters to the shard daemons owning
// the nodes instead of touching a local fleet. The router holds no
// learned state of its own — each shard persists its own snapshot.
type routerServer struct {
	rt       *shardroute.Router
	mux      *http.ServeMux
	logger   *slog.Logger
	registry *telemetry.Registry
	start    time.Time
	reqSeq   atomic.Uint64

	requestTimeout time.Duration
}

func newRouterServer(rt *shardroute.Router, logger *slog.Logger) *routerServer {
	s := &routerServer{
		rt:             rt,
		mux:            http.NewServeMux(),
		logger:         logger,
		registry:       telemetry.NewRegistry(),
		start:          time.Now(),
		requestTimeout: defaultRequestTimeout,
	}
	s.registry.AddFunc(rt.Collect)
	telemetry.RegisterRuntime(s.registry)
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	s.mux.HandleFunc("/v1/schedule/", s.handleSchedule)
	s.mux.HandleFunc("/v1/schedules", s.handleSchedules)
	s.mux.HandleFunc("/v1/profile/", s.handleProfile)
	s.mux.HandleFunc("/v1/strategy/", s.handleStrategy)
	s.mux.HandleFunc("/v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
	})
	return s
}

func (s *routerServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()
	}
	id := "req-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	ctx = telemetry.WithRequestID(ctx, id)
	w.Header().Set("X-Request-ID", id)
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

func (s *routerServer) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req observeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	accepted, err := s.rt.Observe(r.Context(), req.Observations)
	if err != nil {
		// Partial scatter failure: some shards folded their slice, some
		// did not. Surface it as a bad gateway with the accepted count
		// so reporters know what landed.
		s.logger.Warn("routed observe failed on some shards", "accepted", accepted, "err", err)
		writeError(w, http.StatusBadGateway, "observe: accepted %d of %d: %v", accepted, len(req.Observations), err)
		return
	}
	writeJSON(w, http.StatusOK, observeResponse{Received: len(req.Observations), Accepted: accepted})
}

func (s *routerServer) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node := nodeParam(r.URL.Path, "/v1/schedule/")
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	sched, err := s.rt.Schedule(r.Context(), node)
	if err != nil {
		writeError(w, http.StatusBadGateway, "schedule: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, scheduleResponse{Node: node, Schedule: sched})
}

func (s *routerServer) handleSchedules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req schedulesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSchedulesBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	scheds, err := s.rt.ScheduleBatch(r.Context(), req.Nodes)
	if err != nil {
		writeError(w, http.StatusBadGateway, "schedules: %v", err)
		return
	}
	if scheds == nil {
		scheds = []*rushprobe.Schedule{}
	}
	writeJSON(w, http.StatusOK, schedulesResponse{Schedules: scheds})
}

func (s *routerServer) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node := nodeParam(r.URL.Path, "/v1/profile/")
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	prof, err := s.rt.Profile(r.Context(), node)
	if err != nil {
		writeError(w, http.StatusBadGateway, "profile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

func (s *routerServer) handleStrategy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	node := nodeParam(r.URL.Path, "/v1/strategy/")
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	var req strategyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	inForce, err := s.rt.SetStrategy(r.Context(), node, req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadGateway, "strategy: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, strategyResponse{Node: node, Strategy: inForce})
}

func (s *routerServer) handleStrategies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, strategiesResponse{Strategies: rushprobe.Strategies()})
}

// routerHealthResponse is router-mode healthz: merged fleet counters
// plus the shard roster, so operators see both the whole and the
// parts.
type routerHealthResponse struct {
	Status        string   `json:"status"`
	UptimeSeconds float64  `json:"uptimeSeconds"`
	Shards        []string `json:"shards"`
	rushprobe.FleetStats
	PerShard map[string]rushprobe.FleetStats `json:"perShard"`
}

func (s *routerServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	per, perErr := s.rt.ShardStats(r.Context())
	var total rushprobe.FleetStats
	for _, st := range per {
		total.Nodes += st.Nodes
		total.Observations += st.Observations
		total.Stale += st.Stale
		total.Invalid += st.Invalid
		total.PlanSolves += st.PlanSolves
		total.PlanCacheHits += st.PlanCacheHits
		total.CachedPlans += st.CachedPlans
		total.DriftEvents += st.DriftEvents
	}
	status := "ok"
	if perErr != nil {
		status = "degraded: " + perErr.Error()
	}
	writeJSON(w, http.StatusOK, routerHealthResponse{
		Status:        status,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Shards:        s.rt.Shards(),
		FleetStats:    total,
		PerShard:      per,
	})
}

type routerSnapshotResponse struct {
	Shards int `json:"shards"`
}

func (s *routerServer) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if err := s.rt.PersistSnapshots(r.Context()); err != nil {
		writeError(w, http.StatusBadGateway, "snapshot fan-out: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, routerSnapshotResponse{Shards: len(s.rt.Shards())})
}

func (s *routerServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", expositionContentType)
	w.WriteHeader(http.StatusOK)
	_ = s.registry.WriteText(w)
}

// buildRouter wires the -route shard list (comma-separated base URLs)
// into a consistent-hash router over HTTP backends. Shard names are
// the URLs themselves, so the ring is a pure function of the flag.
func buildRouter(shardList string) (*shardroute.Router, error) {
	rt := shardroute.NewRouter(0, nil)
	for _, raw := range strings.Split(shardList, ",") {
		u := strings.TrimSpace(raw)
		if u == "" {
			continue
		}
		if !strings.Contains(u, "://") {
			u = "http://" + u
		}
		u = strings.TrimRight(u, "/")
		if err := rt.AddShard(u, &shardroute.HTTPBackend{BaseURL: u}); err != nil {
			return nil, err
		}
	}
	return rt, nil
}
