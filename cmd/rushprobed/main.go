// Command rushprobed is the fleet daemon: an HTTP/JSON service that
// ingests batched contact observations from sensor nodes, maintains
// per-node rush-hour profiles, and serves each node its current probing
// schedule (bootstrap SNIP-AT until enough epochs are learned, then the
// strategy selected with -mechanism, overridable per node via
// POST /v1/strategy/{node}).
//
// Endpoints:
//
//	POST /v1/observe          {"observations":[{"node":"n1","time":3600,"length":2.1,"uploaded":512}, ...]}
//	GET  /v1/schedule/{node}  current per-slot duty plan + strategy
//	GET  /v1/profile/{node}   learned per-node state
//	POST /v1/strategy/{node}  {"strategy":"SNIP-RH"} sets the node's strategy ("" = fleet default)
//	GET  /v1/strategies       registered strategy names
//	GET  /v1/healthz          liveness + fleet counters
//	POST /v1/snapshot         persist learned state to the -snapshot path
//	GET  /metrics             Prometheus text exposition: counters, gauges, stage histograms
//	GET  /debug/traces?n=     most recent request/stage spans from the in-memory trace ring
//
// Every response is JSON, including errors and unknown routes
// ({"error": "..."}), except /metrics (Prometheus text format).
//
// The daemon degrades rather than collapses under overload: ingest
// concurrency is bounded (-max-inflight-observe), and excess observe
// requests are shed with 429 + Retry-After instead of queueing without
// bound; every request runs under a deadline (-request-timeout); and
// the listener enforces header/read/write/idle timeouts so slow or
// stalled clients cannot pin connections.
//
// Observability: every request gets an ID (returned as X-Request-ID and
// threaded through the fleet's stage spans), requests slower than
// -slow-request are logged automatically, and all logging is structured
// (-log-format text|json, -log-level). -ops-addr starts a second
// listener carrying net/http/pprof, /metrics, and /debug/traces, kept
// off the fleet-facing API port.
//
// With -snapshot the daemon restores learned state at startup (if the
// file exists) and persists it on SIGINT/SIGTERM, so a restarted daemon
// serves bit-identical schedules. -smoke runs a self-contained
// end-to-end check over a real loopback listener and exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"rushprobe"
	"rushprobe/internal/contact"
	"rushprobe/internal/rng"
	"rushprobe/internal/scenario"
	"rushprobe/internal/simtime"
	"rushprobe/internal/telemetry"
	"rushprobe/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rushprobed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rushprobed", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		zeta       = fs.Float64("zeta", 24, "probed-capacity target in seconds per epoch")
		budget     = fs.Float64("budget-fraction", 1.0/1000, "energy budget as a fraction of the epoch")
		bootstrap  = fs.Int("bootstrap-epochs", 3, "epochs of SNIP-AT bootstrap before serving learned plans")
		shards     = fs.Int("shards", 16, "profile store shard count")
		mechanism  = fs.String("mechanism", string(rushprobe.SNIPOPT), "default strategy served after bootstrap: any registered name (see GET /v1/strategies)")
		snapshot   = fs.String("snapshot", "", "JSON snapshot file: restored at startup, written on shutdown and POST /v1/snapshot (with -snaplog set it is import-only)")
		snaplog    = fs.String("snaplog", "", "binary snapshot log: restored at startup, dirty-node deltas appended every -snaplog-interval, compacted on overflow/shutdown/POST /v1/snapshot; preferred over -snapshot at scale")
		snaplogInt = fs.Duration("snaplog-interval", 30*time.Second, "how often to append dirty-node deltas to -snaplog (0 disables the loop)")
		route      = fs.String("route", "", "router mode: comma-separated shard base URLs; the daemon serves the same API by consistent-hash scatter-gather over the shards instead of a local fleet")
		driftDet   = fs.String("drift-detector", "cusum", "streaming drift detector relearning nodes whose rush pattern shifts: cusum, page-hinkley, or none")
		inflight   = fs.Int("max-inflight-observe", 64, "max concurrent observe requests before shedding with 429")
		reqTimeout = fs.Duration("request-timeout", 15*time.Second, "per-request handling deadline")
		smoke      = fs.Bool("smoke", false, "run a loopback end-to-end smoke test and exit")
		smokeTrace = fs.String("trace", "", "contact trace CSV for -smoke (e.g. from tracegen); default: generate internally")
		smokeNodes = fs.Int("smoke-nodes", 8, "how many synthetic nodes -smoke fans the trace out to")
		logFormat  = fs.String("log-format", "text", "structured log format: text or json")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		slowReq    = fs.Duration("slow-request", 250*time.Millisecond, "log any request or fleet stage at least this slow (0 disables)")
		traceRing  = fs.Int("trace-ring", 1024, "in-memory span ring capacity served at /debug/traces")
		opsAddr    = fs.String("ops-addr", "", "separate operations listener (net/http/pprof, /metrics, /debug/traces); empty disables")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger, err := newLogger(os.Stderr, *logFormat, *logLevel)
	if err != nil {
		return err
	}
	if *route != "" {
		if *smoke || *snapshot != "" || *snaplog != "" {
			return errors.New("-route is exclusive of -smoke, -snapshot, and -snaplog: the router holds no fleet state (each shard persists its own)")
		}
		return runRouter(*route, *addr, *reqTimeout, logger)
	}
	tel := rushprobe.NewTelemetry(rushprobe.TelemetryConfig{
		TraceRing: *traceRing,
		SlowSpan:  *slowReq,
		Logger:    logger,
	})
	f, err := rushprobe.NewFleet(
		rushprobe.Roadside(rushprobe.WithZetaTarget(*zeta), rushprobe.WithBudgetFraction(*budget)),
		rushprobe.WithBootstrapEpochs(*bootstrap),
		rushprobe.WithShards(*shards),
		rushprobe.WithFleetMechanism(rushprobe.Mechanism(*mechanism)),
		rushprobe.WithDriftDetector(*driftDet),
		rushprobe.WithTelemetry(tel),
	)
	if err != nil {
		return err
	}
	srv := newServer(f, *snapshot)
	if *inflight > 0 {
		srv.observeSem = make(chan struct{}, *inflight)
	}
	if *reqTimeout > 0 {
		srv.requestTimeout = *reqTimeout
	}
	if *snaplog != "" {
		st := newSnaplogStore(f, *snaplog, logger)
		t0 := time.Now()
		restored, err := st.restore()
		if err != nil {
			return err
		}
		if restored {
			srv.snapMu.Lock()
			srv.snapRestored = true
			srv.snapRestoreDur = time.Since(t0)
			srv.snapMu.Unlock()
		} else if *snapshot != "" {
			// Migration: no binary log yet, import the JSON snapshot and
			// let the compaction below re-persist it in log form.
			if err := srv.restoreSnapshot(); err != nil {
				return err
			}
			logger.Info("imported JSON snapshot into binary log",
				"from", *snapshot, "to", *snaplog, "nodes", f.Stats().Nodes)
		}
		// Establish the on-disk log and the append handle.
		if err := st.compact(); err != nil {
			return err
		}
		srv.snaplog = st
	} else if *snapshot != "" {
		if err := srv.restoreSnapshot(); err != nil {
			return err
		}
	}
	var opsURL string
	if *opsAddr != "" {
		opsLn, err := net.Listen("tcp", *opsAddr)
		if err != nil {
			return err
		}
		opsSrv := newHTTPServer(newOpsMux(srv))
		go opsSrv.Serve(opsLn)
		defer opsSrv.Close()
		opsURL = "http://" + opsLn.Addr().String()
		logger.Info("ops listener up", "addr", opsLn.Addr().String())
	}
	if *smoke {
		return smokeTest(srv, *smokeTrace, *smokeNodes, opsURL, out)
	}

	httpSrv := newHTTPServer(srv)
	httpSrv.Addr = *addr
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if srv.snaplog != nil && *snaplogInt > 0 {
		go func() {
			ticker := time.NewTicker(*snaplogInt)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if err := srv.snaplog.appendDelta(); err != nil {
						logger.Error("snapshot log delta append failed", "err", err)
					}
				}
			}
		}()
	}
	errc := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "mechanism", *mechanism, "snapshot", *snapshot, "snaplog", *snaplog)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if srv.snaplog != nil {
		if err := srv.snaplog.close(); err != nil {
			return err
		}
		logger.Info("snapshot log compacted", "path", *snaplog, "nodes", f.Stats().Nodes)
	} else if *snapshot != "" {
		if err := srv.persistSnapshot(); err != nil {
			return err
		}
		logger.Info("snapshot saved", "path", *snapshot, "nodes", f.Stats().Nodes)
	}
	return nil
}

// runRouter is -route mode: serve the API over a consistent-hash
// router of shard daemons until SIGINT/SIGTERM.
func runRouter(shardList, addr string, reqTimeout time.Duration, logger *slog.Logger) error {
	rt, err := buildRouter(shardList)
	if err != nil {
		return err
	}
	if len(rt.Shards()) == 0 {
		return errors.New("-route lists no shards")
	}
	rsrv := newRouterServer(rt, logger)
	if reqTimeout > 0 {
		rsrv.requestTimeout = reqTimeout
	}
	httpSrv := newHTTPServer(rsrv)
	httpSrv.Addr = addr
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Info("routing", "addr", addr, "shards", rt.Shards())
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutdownCtx)
}

// newLogger builds the daemon's structured logger from the -log-format
// and -log-level flags.
func newLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	return telemetry.NewLogger(w, format, level)
}

// loadSnapshot restores the fleet from path if the file exists; a
// missing file is a fresh start, not an error. A file that exists but
// does not restore (truncated, corrupt, wrong base) is a hard error
// identifying the path — silently starting fresh would discard every
// node's learned state behind the operator's back.
func loadSnapshot(f *rushprobe.Fleet, path string) error {
	file, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.Restore(file); err != nil {
		return fmt.Errorf("snapshot %s is not restorable (remove or replace it to start fresh): %w", path, err)
	}
	return nil
}

// saveSnapshot persists the fleet atomically and durably: write to a
// temp file in the same directory, fsync it, then rename over the
// target. Without the fsync the rename can land on disk before the
// data does, so a crash shortly after saving could leave a truncated
// or empty snapshot at the final path — exactly the state loadSnapshot
// refuses to guess around.
func saveSnapshot(f *rushprobe.Fleet, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := f.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// maxObserveBody bounds an observe request body (64 MiB ≈ 700k
// observations per batch).
const maxObserveBody = 64 << 20

// Default degradation limits; run() overrides them from flags.
const (
	defaultMaxInflightObserve = 64
	defaultRequestTimeout     = 15 * time.Second
)

// Listener-level timeouts. ReadHeaderTimeout evicts slowloris-style
// clients that trickle header bytes; Read/Write bound a whole request
// and response (generous enough for a full 64 MiB observe batch over a
// slow link); Idle reclaims abandoned keep-alive connections.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 60 * time.Second
	writeTimeout      = 60 * time.Second
	idleTimeout       = 120 * time.Second
)

// newHTTPServer wraps the API in an http.Server with the listener
// timeouts applied — every serving path (daemon, smoke test, tests)
// must go through here so no listener runs unbounded.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// server routes the daemon's HTTP API onto a Fleet.
type server struct {
	fleet        *rushprobe.Fleet
	snapshotPath string
	start        time.Time
	mux          *http.ServeMux

	// snaplog, when non-nil, is the incremental binary snapshot log;
	// persistSnapshot then compacts it instead of writing JSON.
	snaplog *snaplogStore

	// tel is the telemetry bundle shared with the fleet (a detached one
	// when the fleet runs untelemetered, so /metrics and /debug/traces
	// keep their shape); registry renders the full /metrics exposition;
	// reqSeq mints request IDs.
	tel      *rushprobe.Telemetry
	logger   *slog.Logger
	registry *telemetry.Registry
	reqSeq   atomic.Uint64

	// requestTimeout bounds each request's context; observeSem bounds
	// concurrent ingest (nil disables shedding), shed counts requests
	// turned away at the semaphore, and inflight gauges current observe
	// handlers for /metrics.
	requestTimeout time.Duration
	observeSem     chan struct{}
	shed           atomic.Int64
	inflight       atomic.Int64

	// Snapshot bookkeeping for /v1/healthz and /metrics: whether a
	// snapshot restored at startup and how long it took, plus the time
	// and duration of the most recent save.
	snapMu         sync.Mutex
	snapRestored   bool
	snapRestoreDur time.Duration
	snapSaves      int64
	snapLastSave   time.Time
	snapSaveDur    time.Duration
}

func newServer(f *rushprobe.Fleet, snapshotPath string) *server {
	tel := f.Telemetry()
	if tel == nil {
		tel = rushprobe.NewTelemetry(rushprobe.TelemetryConfig{})
	}
	s := &server{
		fleet:          f,
		snapshotPath:   snapshotPath,
		start:          time.Now(),
		mux:            http.NewServeMux(),
		tel:            tel,
		logger:         tel.Logger,
		registry:       telemetry.NewRegistry(),
		requestTimeout: defaultRequestTimeout,
		observeSem:     make(chan struct{}, defaultMaxInflightObserve),
	}
	// Exposition order: fleet counters and gauges first (the families the
	// daemon has always served), then the stage histograms, then runtime.
	s.registry.AddFunc(s.collectFleet)
	tel.Register(s.registry)
	telemetry.RegisterRuntime(s.registry)
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	s.mux.HandleFunc("/v1/schedule/", s.handleSchedule)
	s.mux.HandleFunc("/v1/schedules", s.handleSchedules)
	s.mux.HandleFunc("/v1/profile/", s.handleProfile)
	s.mux.HandleFunc("/v1/strategy/", s.handleStrategy)
	s.mux.HandleFunc("/v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("/v1/nodes", s.handleNodes)
	s.mux.HandleFunc("/v1/migrate/export", s.handleMigrateExport)
	s.mux.HandleFunc("/v1/migrate/import", s.handleMigrateImport)
	s.mux.HandleFunc("/v1/migrate/remove", s.handleMigrateRemove)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	// Catch-all: unknown routes get the API's JSON error payload, not
	// the mux's default text/plain 404 (or an empty body).
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// newOpsMux is the operations listener surface: pprof, the metrics
// exposition, and the trace ring — kept off the fleet-facing API
// listener so profiling endpoints are never reachable by nodes.
func newOpsMux(s *server) *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("/debug/pprof/", pprof.Index)
	m.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	m.HandleFunc("/debug/pprof/profile", pprof.Profile)
	m.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	m.HandleFunc("/debug/pprof/trace", pprof.Trace)
	m.HandleFunc("/metrics", s.handleMetrics)
	m.HandleFunc("/debug/traces", s.handleTraces)
	return m
}

// handleNotFound answers any unrouted path with the standard JSON error
// shape, so clients can always decode the body.
func (s *server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
}

// statusWriter captures the response status for the request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP runs every request under the server's deadline, so a
// handler stuck on a slow body or a canceled client cannot outlive its
// budget. It also mints the request ID (echoed as X-Request-ID and
// carried by the context into the fleet's stage spans) and records the
// whole request as an http span — which is what triggers the
// -slow-request auto-log.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	if s.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.requestTimeout)
		defer cancel()
	}
	id := "req-" + strconv.FormatUint(s.reqSeq.Add(1), 10)
	ctx = telemetry.WithRequestID(ctx, id)
	w.Header().Set("X-Request-ID", id)
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	t0 := time.Now()
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	s.tel.Traces.Record(telemetry.Span{
		Request:  id,
		Stage:    "http",
		Shard:    -1,
		Detail:   r.Method + " " + r.URL.Path,
		Status:   sw.status,
		Start:    t0,
		Duration: time.Since(t0),
	})
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// observeRequest is the POST /v1/observe body.
type observeRequest struct {
	Observations []rushprobe.Observation `json:"observations"`
}

type observeResponse struct {
	Received int `json:"received"`
	Accepted int `json:"accepted"`
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Bounded ingest: when every slot is busy, shed immediately with a
	// retry hint instead of queueing without bound — under a traffic
	// spike the daemon stays responsive (schedules, health, metrics)
	// and pushes backpressure to the reporting nodes.
	if s.observeSem != nil {
		select {
		case s.observeSem <- struct{}{}:
			defer func() { <-s.observeSem }()
		default:
			// Shedding under a spike can be very frequent; log the first
			// and then a 1-in-100 sample so the event is visible without
			// the log amplifying the overload.
			if n := s.shed.Add(1); n == 1 || n%100 == 0 {
				s.logger.Warn("observe shed at ingest capacity",
					"shedTotal", n, "request", telemetry.RequestID(r.Context()))
			}
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "ingest at capacity, retry")
			return
		}
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	var req observeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	accepted := s.fleet.ObserveContext(r.Context(), req.Observations)
	writeJSON(w, http.StatusOK, observeResponse{Received: len(req.Observations), Accepted: accepted})
}

// nodeParam extracts the node ID from a /v1/<verb>/{node} path. It
// works on the escaped path and unescapes the remainder itself:
// clients percent-escape IDs (HTTPBackend does, so slashes and dots
// survive routing), and reading r.URL.Path would hand back an ID the
// mux already decoded — correct for most IDs, but unable to tell a
// malformed escape from a literal %, and blind to IDs the cleaner
// would have rewritten. A remainder that does not unescape is an
// error the handler turns into a 400.
func nodeParam(r *http.Request, prefix string) (string, error) {
	raw := strings.TrimPrefix(r.URL.EscapedPath(), prefix)
	node, err := url.PathUnescape(raw)
	if err != nil {
		return "", fmt.Errorf("malformed node ID %q: %v", raw, err)
	}
	return node, nil
}

// scheduleResponse wraps a schedule with the node it was served for.
type scheduleResponse struct {
	Node string `json:"node"`
	*rushprobe.Schedule
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node, err := nodeParam(r, "/v1/schedule/")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	sched, err := s.fleet.ScheduleContext(r.Context(), node)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "schedule: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, scheduleResponse{Node: node, Schedule: sched})
}

// maxSchedulesBody bounds a batch schedule request body (8 MiB ≈
// hundreds of thousands of node IDs).
const maxSchedulesBody = 8 << 20

// schedulesRequest is the POST /v1/schedules body.
type schedulesRequest struct {
	Nodes []string `json:"nodes"`
}

// schedulesResponse returns the plans in the request's node order.
type schedulesResponse struct {
	Schedules []*rushprobe.Schedule `json:"schedules"`
}

// handleSchedules is the batch counterpart of /v1/schedule/{node}: one
// round trip for a whole fleet sweep, and the scatter-gather unit the
// -route mode's router uses against its shards.
func (s *server) handleSchedules(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req schedulesRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSchedulesBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	scheds, err := s.fleet.ScheduleBatch(req.Nodes)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "schedules: %v", err)
		return
	}
	if scheds == nil {
		scheds = []*rushprobe.Schedule{}
	}
	writeJSON(w, http.StatusOK, schedulesResponse{Schedules: scheds})
}

// strategyRequest is the POST /v1/strategy/{node} body.
type strategyRequest struct {
	// Strategy is a registered strategy name or alias; empty clears the
	// node's override (fleet default).
	Strategy string `json:"strategy"`
}

// strategyResponse reports the strategy now in force for the node.
type strategyResponse struct {
	Node     string `json:"node"`
	Strategy string `json:"strategy"`
}

func (s *server) handleStrategy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	node, err := nodeParam(r, "/v1/strategy/")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	var req strategyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	inForce, err := s.fleet.SetStrategy(node, req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "strategy: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, strategyResponse{Node: node, Strategy: inForce})
}

// strategiesResponse is the GET /v1/strategies body.
type strategiesResponse struct {
	Strategies []string `json:"strategies"`
}

func (s *server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, strategiesResponse{Strategies: rushprobe.Strategies()})
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node, err := nodeParam(r, "/v1/profile/")
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	prof, err := s.fleet.Profile(node)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "profile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

// nodesResponse is the GET /v1/nodes body: every tracked node ID,
// sorted — the enumeration a router rebalance diffs against the new
// ring.
type nodesResponse struct {
	Nodes []string `json:"nodes"`
}

func (s *server) handleNodes(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	ids := s.fleet.NodeIDs()
	if ids == nil {
		ids = []string{}
	}
	writeJSON(w, http.StatusOK, nodesResponse{Nodes: ids})
}

// migrateExportRequest is the POST /v1/migrate/export body.
type migrateExportRequest struct {
	Nodes []string `json:"nodes"`
}

// handleMigrateExport streams the named nodes as self-contained binary
// snapshot frames (the SnapshotBinary format) for a shard handoff. The
// exporting fleet is untouched: it stays authoritative until the
// migration commits and the router removes the nodes.
func (s *server) handleMigrateExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req migrateExportRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSchedulesBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if len(req.Nodes) == 0 {
		writeError(w, http.StatusBadRequest, "no nodes requested")
		return
	}
	data, err := s.fleet.ExportNodes(req.Nodes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "export: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// maxMigrateBody bounds an import payload (256 MiB ≈ a million-node
// shard's full frame set; a rebalance moves a fraction of that).
const maxMigrateBody = 256 << 20

// migrateImportResponse is the POST /v1/migrate/import reply.
type migrateImportResponse struct {
	Imported int `json:"imported"`
}

// handleMigrateImport admits binary frames produced by an export. The
// payload is validated whole before anything lands, and with -snaplog
// configured the imported nodes are appended to the log before the 200
// goes out — the router treats this reply as the durable half of its
// commit point, so acknowledging an unpersisted import would let a
// crash lose nodes both sides think were handed off.
func (s *server) handleMigrateImport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxMigrateBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read: %v", err)
		return
	}
	n, err := s.fleet.ImportFrames(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "import: %v", err)
		return
	}
	if s.snaplog != nil {
		if err := s.snaplog.appendDelta(); err != nil {
			writeError(w, http.StatusInternalServerError, "imported %d nodes but could not persist them: %v", n, err)
			return
		}
	}
	s.logger.Info("migrate import", "nodes", n, "request", telemetry.RequestID(r.Context()))
	writeJSON(w, http.StatusOK, migrateImportResponse{Imported: n})
}

// migrateRemoveRequest is the POST /v1/migrate/remove body.
type migrateRemoveRequest struct {
	Nodes []string `json:"nodes"`
}

// migrateRemoveResponse is the POST /v1/migrate/remove reply.
type migrateRemoveResponse struct {
	Removed int `json:"removed"`
}

// handleMigrateRemove deletes the named nodes — the post-commit
// cleanup of a handoff. Unknown IDs are skipped, so re-running a
// partially cleaned migration converges.
func (s *server) handleMigrateRemove(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req migrateRemoveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSchedulesBody)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	n := s.fleet.RemoveNodes(req.Nodes)
	if n > 0 && s.snaplog != nil {
		// The log has no tombstone frame and restores last-record-wins,
		// so a restart would resurrect removed nodes from their old
		// frames. A compaction rewrites the log from current state. It
		// is deliberately non-fatal: the remove already succeeded in
		// memory and the nodes are unreachable through the ring, so a
		// failed rewrite degrades to stale-but-harmless log entries the
		// next compaction clears.
		if err := s.snaplog.compact(); err != nil {
			s.logger.Warn("migrate remove: snapshot log compaction failed", "nodes", n, "err", err)
		}
	}
	s.logger.Info("migrate remove", "nodes", n, "request", telemetry.RequestID(r.Context()))
	writeJSON(w, http.StatusOK, migrateRemoveResponse{Removed: n})
}

// healthResponse is the GET /v1/healthz body.
type healthResponse struct {
	Status        string         `json:"status"`
	UptimeSeconds float64        `json:"uptimeSeconds"`
	Snapshot      snapshotHealth `json:"snapshot"`
	rushprobe.FleetStats
}

// snapshotHealth is the healthz view of snapshot persistence.
type snapshotHealth struct {
	// Configured reports whether the daemon runs with -snapshot at all.
	Configured bool `json:"configured"`
	// RestoredAtStartup is true when learned state was restored from the
	// snapshot file when the daemon started.
	RestoredAtStartup bool `json:"restoredAtStartup"`
	// Saves counts snapshot writes since startup (shutdown + POST
	// /v1/snapshot).
	Saves int64 `json:"saves"`
	// LastSaveAgeSeconds is the age of the newest save, -1 before the
	// first — the staleness alarm input for operators.
	LastSaveAgeSeconds float64 `json:"lastSaveAgeSeconds"`
	// LastSaveDurationSeconds and LastRestoreDurationSeconds are the
	// wall-clock costs of the most recent save and the startup restore.
	LastSaveDurationSeconds    float64 `json:"lastSaveDurationSeconds"`
	LastRestoreDurationSeconds float64 `json:"lastRestoreDurationSeconds"`
}

// snapshotHealth snapshots the server's persistence bookkeeping.
func (s *server) snapshotHealth() snapshotHealth {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	h := snapshotHealth{
		Configured:                 s.snapshotPath != "" || s.snaplog != nil,
		RestoredAtStartup:          s.snapRestored,
		Saves:                      s.snapSaves,
		LastSaveAgeSeconds:         -1,
		LastSaveDurationSeconds:    s.snapSaveDur.Seconds(),
		LastRestoreDurationSeconds: s.snapRestoreDur.Seconds(),
	}
	if !s.snapLastSave.IsZero() {
		h.LastSaveAgeSeconds = time.Since(s.snapLastSave).Seconds()
	}
	return h
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		Snapshot:      s.snapshotHealth(),
		FleetStats:    s.fleet.Stats(),
	})
}

// expositionContentType is the Prometheus text-format content type.
const expositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// collectFleet emits the daemon's counter and gauge families. Labeled
// gauges use sorted values so consecutive scrapes of an unchanged fleet
// are byte-identical.
func (s *server) collectFleet(e *telemetry.Exposition) {
	st := s.fleet.Stats()
	e.Gauge("rushprobe_uptime_seconds", "Seconds since the daemon started.", time.Since(s.start).Seconds())
	e.Gauge("rushprobe_nodes", "Tracked per-node profiles.", float64(st.Nodes))
	e.Counter("rushprobe_observations_accepted_total", "Contact observations folded into profiles.", float64(st.Observations))
	e.Counter("rushprobe_observations_stale_total", "Observations discarded for arriving in an already-folded epoch.", float64(st.Stale))
	e.Counter("rushprobe_observations_invalid_total", "Observations rejected outright.", float64(st.Invalid))
	e.Counter("rushprobe_plan_solves_total", "Optimizer solves.", float64(st.PlanSolves))
	e.Counter("rushprobe_plan_cache_hits_total", "Schedule requests served from the fingerprint cache.", float64(st.PlanCacheHits))
	e.Counter("rushprobe_plan_cache_misses_total", "Schedule requests that missed the fingerprint cache and solved.", float64(st.PlanSolves))
	e.Gauge("rushprobe_plan_cache_size", "Distinct plan fingerprints cached.", float64(st.CachedPlans))
	e.Counter("rushprobe_drift_events_total", "Drift-detector firings that relearned a node.", float64(st.DriftEvents))
	e.Counter("rushprobe_observe_shed_total", "Observe requests shed at the ingest concurrency bound.", float64(s.shed.Load()))
	e.Gauge("rushprobe_observe_inflight", "Observe requests currently being handled.", float64(s.inflight.Load()))

	byStrategy := s.fleet.StrategyNodes()
	names := make([]string, 0, len(byStrategy))
	for name := range byStrategy {
		names = append(names, name)
	}
	sort.Strings(names)
	strat := make([]telemetry.LabelValue, 0, len(names))
	for _, name := range names {
		strat = append(strat, telemetry.LabelValue{Label: name, Value: float64(byStrategy[name])})
	}
	e.LabeledGauge("rushprobe_strategy_nodes", "Nodes served per strategy in force.", "strategy", strat)

	shardCounts := s.fleet.ShardNodes()
	shards := make([]telemetry.LabelValue, len(shardCounts))
	for i, n := range shardCounts {
		shards[i] = telemetry.LabelValue{Label: strconv.Itoa(i), Value: float64(n)}
	}
	e.LabeledGauge("rushprobe_shard_nodes", "Nodes per profile-store shard.", "shard", shards)

	mem := s.fleet.Memory()
	e.Gauge("rushprobe_profile_bytes", "Estimated resident bytes of all node profiles.", float64(mem.ProfileBytes))
	e.Gauge("rushprobe_profile_bytes_per_node", "Estimated profile bytes per tracked node.", mem.BytesPerNode)

	sh := s.snapshotHealth()
	e.Counter("rushprobe_snapshot_saves_total", "Snapshots persisted since startup.", float64(sh.Saves))
	e.Gauge("rushprobe_snapshot_last_save_age_seconds", "Seconds since the last snapshot save (-1 before the first).", sh.LastSaveAgeSeconds)
	e.Gauge("rushprobe_snapshot_last_save_seconds", "Duration of the last snapshot save in seconds.", sh.LastSaveDurationSeconds)

	if s.snaplog != nil {
		base, appended, deltas, deltaNodes, compactions := s.snaplog.stats()
		e.Gauge("rushprobe_snaplog_base_bytes", "Bytes of the snapshot log's last full compaction.", float64(base))
		e.Gauge("rushprobe_snaplog_delta_bytes", "Delta bytes appended to the snapshot log since the last compaction.", float64(appended))
		e.Counter("rushprobe_snaplog_deltas_total", "Delta appends to the snapshot log since startup.", float64(deltas))
		e.Counter("rushprobe_snaplog_delta_nodes_total", "Node records written by delta appends since startup.", float64(deltaNodes))
		e.Counter("rushprobe_snaplog_compactions_total", "Snapshot log compactions since startup.", float64(compactions))
		e.Gauge("rushprobe_fleet_dirty_nodes", "Nodes changed since the last snapshot-log write.", float64(s.fleet.DirtyNodes()))
	}
}

// handleMetrics renders the registry — fleet counters, stage latency
// histograms, runtime gauges — in the Prometheus text exposition
// format, hand-rolled to keep the daemon dependency-free.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	var b bytes.Buffer
	if err := s.registry.WriteText(&b); err != nil {
		writeError(w, http.StatusInternalServerError, "metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", expositionContentType)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

// tracesResponse is the GET /debug/traces body: the most recent spans,
// newest first, plus the all-time recorded count.
type tracesResponse struct {
	Total uint64           `json:"total"`
	Spans []telemetry.Span `json:"spans"`
}

func (s *server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 1 {
			writeError(w, http.StatusBadRequest, "n must be a positive integer, got %q", q)
			return
		}
		n = v
	}
	spans := s.tel.Traces.Last(n)
	if spans == nil {
		spans = []telemetry.Span{}
	}
	writeJSON(w, http.StatusOK, tracesResponse{Total: s.tel.Traces.Total(), Spans: spans})
}

// restoreSnapshot restores the fleet from the configured snapshot at
// startup (missing file = fresh start) and records the restore for
// /v1/healthz.
func (s *server) restoreSnapshot() error {
	if _, err := os.Stat(s.snapshotPath); errors.Is(err, os.ErrNotExist) {
		return nil
	}
	t0 := time.Now()
	if err := loadSnapshot(s.fleet, s.snapshotPath); err != nil {
		return err
	}
	s.snapMu.Lock()
	s.snapRestored = true
	s.snapRestoreDur = time.Since(t0)
	s.snapMu.Unlock()
	return nil
}

// persistSnapshot saves the fleet — a binary-log compaction when
// -snaplog is configured, the JSON snapshot otherwise — and records
// the save time and duration for /v1/healthz and /metrics.
func (s *server) persistSnapshot() error {
	t0 := time.Now()
	var err error
	if s.snaplog != nil {
		err = s.snaplog.compact()
	} else {
		err = saveSnapshot(s.fleet, s.snapshotPath)
	}
	if err != nil {
		return err
	}
	s.snapMu.Lock()
	s.snapSaves++
	s.snapLastSave = time.Now()
	s.snapSaveDur = s.snapLastSave.Sub(t0)
	s.snapMu.Unlock()
	return nil
}

type snapshotResponse struct {
	Nodes int    `json:"nodes"`
	Path  string `json:"path"`
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.snapshotPath == "" && s.snaplog == nil {
		writeError(w, http.StatusBadRequest, "daemon started without -snapshot or -snaplog")
		return
	}
	if err := s.persistSnapshot(); err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	path := s.snapshotPath
	if s.snaplog != nil {
		path = s.snaplog.path
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Nodes: s.fleet.Stats().Nodes, Path: path})
}

// smokeContacts loads the trace CSV (e.g. written by tracegen), or
// generates the canonical road-side trace when path is empty.
func smokeContacts(path string) ([]contact.Contact, error) {
	if path != "" {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		return trace.Read(file)
	}
	gen, err := contact.NewGenerator(scenario.Roadside(), rng.New(1))
	if err != nil {
		return nil, err
	}
	return gen.GenerateUntil(simtime.Instant(4 * simtime.Day)), nil
}

// smokeTest exercises the daemon end to end over a real loopback
// listener: ingest a contact trace for a handful of nodes, fetch each
// node's schedule and profile, check the health counters, and validate
// the telemetry surface — /metrics must parse in strict text format
// with the required families and coherent histograms, and the trace
// ring must have recorded the run. When opsURL is non-empty the ops
// listener's /metrics and pprof endpoints are exercised too.
func smokeTest(srv *server, tracePath string, nodes int, opsURL string, out io.Writer) error {
	if nodes <= 0 {
		return fmt.Errorf("smoke: need at least one node, got %d", nodes)
	}
	contacts, err := smokeContacts(tracePath)
	if err != nil {
		return err
	}
	if len(contacts) == 0 {
		return errors.New("smoke: empty contact trace")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(srv)
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	obs := make([]rushprobe.Observation, 0, len(contacts)*nodes)
	for n := 0; n < nodes; n++ {
		id := fmt.Sprintf("smoke-%03d", n)
		for _, c := range contacts {
			obs = append(obs, rushprobe.Observation{
				Node:     id,
				Time:     c.Start.Seconds(),
				Length:   c.Length.Seconds(),
				Uploaded: -1,
			})
		}
	}
	body, err := json.Marshal(observeRequest{Observations: obs})
	if err != nil {
		return err
	}
	var or observeResponse
	if err := postJSON(base+"/v1/observe", body, &or); err != nil {
		return err
	}
	if or.Accepted != len(obs) {
		return fmt.Errorf("smoke: accepted %d of %d observations", or.Accepted, len(obs))
	}
	fmt.Fprintf(out, "smoke: ingested %d observations (%d contacts x %d nodes)\n", or.Accepted, len(contacts), nodes)

	learned := true
	for n := 0; n < nodes; n++ {
		id := fmt.Sprintf("smoke-%03d", n)
		var sr scheduleResponse
		if err := getJSON(base+"/v1/schedule/"+id, &sr); err != nil {
			return fmt.Errorf("smoke: schedule %s: %w", id, err)
		}
		if sr.Schedule == nil || len(sr.Duty) == 0 {
			return fmt.Errorf("smoke: node %s got an empty schedule", id)
		}
		if sr.Mechanism == string(rushprobe.SNIPAT) {
			learned = false
		}
		if n == 0 {
			fmt.Fprintf(out, "smoke: %s serves %s, zeta=%.2f phi=%.2f over %d slots\n",
				id, sr.Mechanism, sr.Zeta, sr.Phi, len(sr.Duty))
		}
	}
	var hr healthResponse
	if err := getJSON(base+"/v1/healthz", &hr); err != nil {
		return err
	}
	if hr.Status != "ok" || hr.Nodes != nodes {
		return fmt.Errorf("smoke: healthz reports %+v, want ok with %d nodes", hr, nodes)
	}
	// Every node ingested the same trace, so once past bootstrap the
	// plan cache must collapse the fleet to a single optimizer solve.
	if learned && (hr.PlanSolves != 1 || hr.PlanCacheHits != int64(nodes-1)) {
		return fmt.Errorf("smoke: plan cache not shared: %d solves, %d hits (want 1, %d)",
			hr.PlanSolves, hr.PlanCacheHits, nodes-1)
	}
	if hr.Snapshot.Configured != (srv.snapshotPath != "") {
		return fmt.Errorf("smoke: healthz snapshot block reports configured=%v with snapshot path %q",
			hr.Snapshot.Configured, srv.snapshotPath)
	}
	fmt.Fprintf(out, "smoke: healthz ok — %d nodes, %d observations, %d plan solves, %d cache hits\n",
		hr.Nodes, hr.Observations, hr.PlanSolves, hr.PlanCacheHits)

	if err := smokeMetrics(base, out); err != nil {
		return err
	}
	var tr tracesResponse
	if err := getJSON(base+"/debug/traces?n=10", &tr); err != nil {
		return err
	}
	if tr.Total == 0 || len(tr.Spans) == 0 {
		return fmt.Errorf("smoke: trace ring is empty after the run (total %d, %d spans)", tr.Total, len(tr.Spans))
	}
	fmt.Fprintf(out, "smoke: traces ok — %d spans recorded, newest stage %q\n", tr.Total, tr.Spans[0].Stage)

	if opsURL != "" {
		if _, err := scrapeMetrics(opsURL + "/metrics"); err != nil {
			return fmt.Errorf("smoke: ops listener metrics: %w", err)
		}
		resp, err := http.Get(opsURL + "/debug/pprof/cmdline")
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("smoke: pprof cmdline: HTTP %d", resp.StatusCode)
		}
		fmt.Fprintln(out, "smoke: ops listener ok (metrics + pprof)")
	}
	fmt.Fprintln(out, "smoke: OK")
	return nil
}

// requiredFamilies are the metric families a healthy daemon must
// expose; the smoke test (and CI's daemon smoke step behind it) fails
// if any is missing or malformed.
var requiredFamilies = []string{
	"rushprobe_ingest_batch_seconds",
	"rushprobe_plan_cache_hits_total",
	"rushprobe_plan_cache_misses_total",
	"rushprobe_profile_bytes_per_node",
	"rushprobe_drift_events_total",
}

// smokeMetrics scrapes and validates the daemon's exposition.
func smokeMetrics(base string, out io.Writer) error {
	fams, err := scrapeMetrics(base + "/metrics")
	if err != nil {
		return fmt.Errorf("smoke: %w", err)
	}
	for _, name := range requiredFamilies {
		if _, ok := fams[name]; !ok {
			return fmt.Errorf("smoke: /metrics is missing the %s family", name)
		}
	}
	ingest := fams["rushprobe_ingest_batch_seconds"]
	if err := ingest.ValidateHistogram(); err != nil {
		return fmt.Errorf("smoke: ingest histogram: %w", err)
	}
	ih := ingest.Histogram()
	if ih.Count < 1 {
		return errors.New("smoke: ingest histogram counted no batches after ingesting the trace")
	}
	fmt.Fprintf(out, "smoke: metrics ok — %d families, ingest p99 %.3f ms over %.0f batches\n",
		len(fams), ih.Quantile(0.99)*1e3, ih.Count)
	return nil
}

// scrapeMetrics fetches and strictly parses a Prometheus text
// exposition — the same parser rushbench uses, so smoke failures and
// bench scrapes agree on what well-formed means.
func scrapeMetrics(url string) (map[string]*telemetry.Family, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != expositionContentType {
		return nil, fmt.Errorf("metrics: Content-Type %q, want %q", ct, expositionContentType)
	}
	return telemetry.ParseText(resp.Body)
}

func postJSON(url string, body []byte, v any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeResponse(resp, v)
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(resp, v)
}

func decodeResponse(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
