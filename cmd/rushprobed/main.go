// Command rushprobed is the fleet daemon: an HTTP/JSON service that
// ingests batched contact observations from sensor nodes, maintains
// per-node rush-hour profiles, and serves each node its current probing
// schedule (bootstrap SNIP-AT until enough epochs are learned, then the
// strategy selected with -mechanism, overridable per node via
// POST /v1/strategy/{node}).
//
// Endpoints:
//
//	POST /v1/observe          {"observations":[{"node":"n1","time":3600,"length":2.1,"uploaded":512}, ...]}
//	GET  /v1/schedule/{node}  current per-slot duty plan + strategy
//	GET  /v1/profile/{node}   learned per-node state
//	POST /v1/strategy/{node}  {"strategy":"SNIP-RH"} sets the node's strategy ("" = fleet default)
//	GET  /v1/strategies       registered strategy names
//	GET  /v1/healthz          liveness + fleet counters
//	POST /v1/snapshot         persist learned state to the -snapshot path
//	GET  /metrics             Prometheus text exposition of the same counters
//
// Every response is JSON, including errors and unknown routes
// ({"error": "..."}), except /metrics (Prometheus text format).
//
// The daemon degrades rather than collapses under overload: ingest
// concurrency is bounded (-max-inflight-observe), and excess observe
// requests are shed with 429 + Retry-After instead of queueing without
// bound; every request runs under a deadline (-request-timeout); and
// the listener enforces header/read/write/idle timeouts so slow or
// stalled clients cannot pin connections.
//
// With -snapshot the daemon restores learned state at startup (if the
// file exists) and persists it on SIGINT/SIGTERM, so a restarted daemon
// serves bit-identical schedules. -smoke runs a self-contained
// end-to-end check over a real loopback listener and exits.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"rushprobe"
	"rushprobe/internal/contact"
	"rushprobe/internal/rng"
	"rushprobe/internal/scenario"
	"rushprobe/internal/simtime"
	"rushprobe/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rushprobed:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rushprobed", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		zeta       = fs.Float64("zeta", 24, "probed-capacity target in seconds per epoch")
		budget     = fs.Float64("budget-fraction", 1.0/1000, "energy budget as a fraction of the epoch")
		bootstrap  = fs.Int("bootstrap-epochs", 3, "epochs of SNIP-AT bootstrap before serving learned plans")
		shards     = fs.Int("shards", 16, "profile store shard count")
		mechanism  = fs.String("mechanism", string(rushprobe.SNIPOPT), "default strategy served after bootstrap: any registered name (see GET /v1/strategies)")
		snapshot   = fs.String("snapshot", "", "snapshot file: restored at startup, written on shutdown and POST /v1/snapshot")
		driftDet   = fs.String("drift-detector", "cusum", "streaming drift detector relearning nodes whose rush pattern shifts: cusum, page-hinkley, or none")
		inflight   = fs.Int("max-inflight-observe", 64, "max concurrent observe requests before shedding with 429")
		reqTimeout = fs.Duration("request-timeout", 15*time.Second, "per-request handling deadline")
		smoke      = fs.Bool("smoke", false, "run a loopback end-to-end smoke test and exit")
		smokeTrace = fs.String("trace", "", "contact trace CSV for -smoke (e.g. from tracegen); default: generate internally")
		smokeNodes = fs.Int("smoke-nodes", 8, "how many synthetic nodes -smoke fans the trace out to")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	f, err := rushprobe.NewFleet(
		rushprobe.Roadside(rushprobe.WithZetaTarget(*zeta), rushprobe.WithBudgetFraction(*budget)),
		rushprobe.WithBootstrapEpochs(*bootstrap),
		rushprobe.WithShards(*shards),
		rushprobe.WithFleetMechanism(rushprobe.Mechanism(*mechanism)),
		rushprobe.WithDriftDetector(*driftDet),
	)
	if err != nil {
		return err
	}
	if *snapshot != "" {
		if err := loadSnapshot(f, *snapshot); err != nil {
			return err
		}
	}
	srv := newServer(f, *snapshot)
	if *inflight > 0 {
		srv.observeSem = make(chan struct{}, *inflight)
	}
	if *reqTimeout > 0 {
		srv.requestTimeout = *reqTimeout
	}
	if *smoke {
		return smokeTest(srv, *smokeTrace, *smokeNodes, out)
	}

	httpSrv := newHTTPServer(srv)
	httpSrv.Addr = *addr
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(out, "rushprobed: listening on %s\n", *addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if *snapshot != "" {
		if err := saveSnapshot(f, *snapshot); err != nil {
			return err
		}
		fmt.Fprintf(out, "rushprobed: snapshot saved to %s\n", *snapshot)
	}
	return nil
}

// loadSnapshot restores the fleet from path if the file exists; a
// missing file is a fresh start, not an error. A file that exists but
// does not restore (truncated, corrupt, wrong base) is a hard error
// identifying the path — silently starting fresh would discard every
// node's learned state behind the operator's back.
func loadSnapshot(f *rushprobe.Fleet, path string) error {
	file, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.Restore(file); err != nil {
		return fmt.Errorf("snapshot %s is not restorable (remove or replace it to start fresh): %w", path, err)
	}
	return nil
}

// saveSnapshot persists the fleet atomically and durably: write to a
// temp file in the same directory, fsync it, then rename over the
// target. Without the fsync the rename can land on disk before the
// data does, so a crash shortly after saving could leave a truncated
// or empty snapshot at the final path — exactly the state loadSnapshot
// refuses to guess around.
func saveSnapshot(f *rushprobe.Fleet, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := f.Snapshot(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// maxObserveBody bounds an observe request body (64 MiB ≈ 700k
// observations per batch).
const maxObserveBody = 64 << 20

// Default degradation limits; run() overrides them from flags.
const (
	defaultMaxInflightObserve = 64
	defaultRequestTimeout     = 15 * time.Second
)

// Listener-level timeouts. ReadHeaderTimeout evicts slowloris-style
// clients that trickle header bytes; Read/Write bound a whole request
// and response (generous enough for a full 64 MiB observe batch over a
// slow link); Idle reclaims abandoned keep-alive connections.
const (
	readHeaderTimeout = 5 * time.Second
	readTimeout       = 60 * time.Second
	writeTimeout      = 60 * time.Second
	idleTimeout       = 120 * time.Second
)

// newHTTPServer wraps the API in an http.Server with the listener
// timeouts applied — every serving path (daemon, smoke test, tests)
// must go through here so no listener runs unbounded.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
}

// server routes the daemon's HTTP API onto a Fleet.
type server struct {
	fleet        *rushprobe.Fleet
	snapshotPath string
	start        time.Time
	mux          *http.ServeMux

	// requestTimeout bounds each request's context; observeSem bounds
	// concurrent ingest (nil disables shedding), shed counts requests
	// turned away at the semaphore, and inflight gauges current observe
	// handlers for /metrics.
	requestTimeout time.Duration
	observeSem     chan struct{}
	shed           atomic.Int64
	inflight       atomic.Int64
}

func newServer(f *rushprobe.Fleet, snapshotPath string) *server {
	s := &server{
		fleet:          f,
		snapshotPath:   snapshotPath,
		start:          time.Now(),
		mux:            http.NewServeMux(),
		requestTimeout: defaultRequestTimeout,
		observeSem:     make(chan struct{}, defaultMaxInflightObserve),
	}
	s.mux.HandleFunc("/v1/observe", s.handleObserve)
	s.mux.HandleFunc("/v1/schedule/", s.handleSchedule)
	s.mux.HandleFunc("/v1/profile/", s.handleProfile)
	s.mux.HandleFunc("/v1/strategy/", s.handleStrategy)
	s.mux.HandleFunc("/v1/strategies", s.handleStrategies)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	// Catch-all: unknown routes get the API's JSON error payload, not
	// the mux's default text/plain 404 (or an empty body).
	s.mux.HandleFunc("/", s.handleNotFound)
	return s
}

// handleNotFound answers any unrouted path with the standard JSON error
// shape, so clients can always decode the body.
func (s *server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	writeError(w, http.StatusNotFound, "unknown path %q", r.URL.Path)
}

// ServeHTTP runs every request under the server's deadline, so a
// handler stuck on a slow body or a canceled client cannot outlive its
// budget.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.requestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	s.mux.ServeHTTP(w, r)
}

// writeJSON sends v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// observeRequest is the POST /v1/observe body.
type observeRequest struct {
	Observations []rushprobe.Observation `json:"observations"`
}

type observeResponse struct {
	Received int `json:"received"`
	Accepted int `json:"accepted"`
}

func (s *server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	// Bounded ingest: when every slot is busy, shed immediately with a
	// retry hint instead of queueing without bound — under a traffic
	// spike the daemon stays responsive (schedules, health, metrics)
	// and pushes backpressure to the reporting nodes.
	if s.observeSem != nil {
		select {
		case s.observeSem <- struct{}{}:
			defer func() { <-s.observeSem }()
		default:
			s.shed.Add(1)
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "ingest at capacity, retry")
			return
		}
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	var req observeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxObserveBody))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	accepted := s.fleet.Observe(req.Observations)
	writeJSON(w, http.StatusOK, observeResponse{Received: len(req.Observations), Accepted: accepted})
}

// nodeParam extracts the node ID from a /v1/<verb>/{node} path.
func nodeParam(path, prefix string) string {
	return strings.TrimPrefix(path, prefix)
}

// scheduleResponse wraps a schedule with the node it was served for.
type scheduleResponse struct {
	Node string `json:"node"`
	*rushprobe.Schedule
}

func (s *server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node := nodeParam(r.URL.Path, "/v1/schedule/")
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	sched, err := s.fleet.Schedule(node)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "schedule: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, scheduleResponse{Node: node, Schedule: sched})
}

// strategyRequest is the POST /v1/strategy/{node} body.
type strategyRequest struct {
	// Strategy is a registered strategy name or alias; empty clears the
	// node's override (fleet default).
	Strategy string `json:"strategy"`
}

// strategyResponse reports the strategy now in force for the node.
type strategyResponse struct {
	Node     string `json:"node"`
	Strategy string `json:"strategy"`
}

func (s *server) handleStrategy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	node := nodeParam(r.URL.Path, "/v1/strategy/")
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	var req strategyRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4096)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	inForce, err := s.fleet.SetStrategy(node, req.Strategy)
	if err != nil {
		writeError(w, http.StatusBadRequest, "strategy: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, strategyResponse{Node: node, Strategy: inForce})
}

// strategiesResponse is the GET /v1/strategies body.
type strategiesResponse struct {
	Strategies []string `json:"strategies"`
}

func (s *server) handleStrategies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, strategiesResponse{Strategies: rushprobe.Strategies()})
}

func (s *server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	node := nodeParam(r.URL.Path, "/v1/profile/")
	if node == "" {
		writeError(w, http.StatusBadRequest, "missing node ID")
		return
	}
	prof, err := s.fleet.Profile(node)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "profile: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, prof)
}

// healthResponse is the GET /v1/healthz body.
type healthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
	rushprobe.FleetStats
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		FleetStats:    s.fleet.Stats(),
	})
}

// handleMetrics exposes the daemon's counters in the Prometheus text
// exposition format, hand-rolled to keep the daemon dependency-free:
// each metric is a `# HELP`/`# TYPE` pair plus one sample line, with
// the per-strategy node gauge emitted with sorted label values so
// consecutive scrapes of an unchanged fleet are byte-identical.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	st := s.fleet.Stats()
	var b bytes.Buffer
	gauge := func(name, help string, v any) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge("rushprobe_uptime_seconds", "Seconds since the daemon started.", fmt.Sprintf("%.3f", time.Since(s.start).Seconds()))
	gauge("rushprobe_nodes", "Tracked per-node profiles.", st.Nodes)
	counter("rushprobe_observations_accepted_total", "Contact observations folded into profiles.", st.Observations)
	counter("rushprobe_observations_stale_total", "Observations discarded for arriving in an already-folded epoch.", st.Stale)
	counter("rushprobe_observations_invalid_total", "Observations rejected outright.", st.Invalid)
	counter("rushprobe_plan_solves_total", "Optimizer solves.", st.PlanSolves)
	counter("rushprobe_plan_cache_hits_total", "Schedule requests served from the fingerprint cache.", st.PlanCacheHits)
	gauge("rushprobe_plan_cache_size", "Distinct plan fingerprints cached.", st.CachedPlans)
	counter("rushprobe_drift_events_total", "Drift-detector firings that relearned a node.", st.DriftEvents)
	counter("rushprobe_observe_shed_total", "Observe requests shed at the ingest concurrency bound.", s.shed.Load())
	gauge("rushprobe_observe_inflight", "Observe requests currently being handled.", s.inflight.Load())

	byStrategy := s.fleet.StrategyNodes()
	names := make([]string, 0, len(byStrategy))
	for name := range byStrategy {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(&b, "# HELP rushprobe_strategy_nodes Nodes served per strategy in force.\n# TYPE rushprobe_strategy_nodes gauge\n")
	for _, name := range names {
		fmt.Fprintf(&b, "rushprobe_strategy_nodes{strategy=%q} %d\n", name, byStrategy[name])
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

type snapshotResponse struct {
	Nodes int    `json:"nodes"`
	Path  string `json:"path"`
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.snapshotPath == "" {
		writeError(w, http.StatusBadRequest, "daemon started without -snapshot")
		return
	}
	if err := saveSnapshot(s.fleet, s.snapshotPath); err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, snapshotResponse{Nodes: s.fleet.Stats().Nodes, Path: s.snapshotPath})
}

// smokeContacts loads the trace CSV (e.g. written by tracegen), or
// generates the canonical road-side trace when path is empty.
func smokeContacts(path string) ([]contact.Contact, error) {
	if path != "" {
		file, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer file.Close()
		return trace.Read(file)
	}
	gen, err := contact.NewGenerator(scenario.Roadside(), rng.New(1))
	if err != nil {
		return nil, err
	}
	return gen.GenerateUntil(simtime.Instant(4 * simtime.Day)), nil
}

// smokeTest exercises the daemon end to end over a real loopback
// listener: ingest a contact trace for a handful of nodes, fetch each
// node's schedule and profile, and check the health counters.
func smokeTest(srv *server, tracePath string, nodes int, out io.Writer) error {
	if nodes <= 0 {
		return fmt.Errorf("smoke: need at least one node, got %d", nodes)
	}
	contacts, err := smokeContacts(tracePath)
	if err != nil {
		return err
	}
	if len(contacts) == 0 {
		return errors.New("smoke: empty contact trace")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := newHTTPServer(srv)
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()

	obs := make([]rushprobe.Observation, 0, len(contacts)*nodes)
	for n := 0; n < nodes; n++ {
		id := fmt.Sprintf("smoke-%03d", n)
		for _, c := range contacts {
			obs = append(obs, rushprobe.Observation{
				Node:     id,
				Time:     c.Start.Seconds(),
				Length:   c.Length.Seconds(),
				Uploaded: -1,
			})
		}
	}
	body, err := json.Marshal(observeRequest{Observations: obs})
	if err != nil {
		return err
	}
	var or observeResponse
	if err := postJSON(base+"/v1/observe", body, &or); err != nil {
		return err
	}
	if or.Accepted != len(obs) {
		return fmt.Errorf("smoke: accepted %d of %d observations", or.Accepted, len(obs))
	}
	fmt.Fprintf(out, "smoke: ingested %d observations (%d contacts x %d nodes)\n", or.Accepted, len(contacts), nodes)

	learned := true
	for n := 0; n < nodes; n++ {
		id := fmt.Sprintf("smoke-%03d", n)
		var sr scheduleResponse
		if err := getJSON(base+"/v1/schedule/"+id, &sr); err != nil {
			return fmt.Errorf("smoke: schedule %s: %w", id, err)
		}
		if sr.Schedule == nil || len(sr.Duty) == 0 {
			return fmt.Errorf("smoke: node %s got an empty schedule", id)
		}
		if sr.Mechanism == string(rushprobe.SNIPAT) {
			learned = false
		}
		if n == 0 {
			fmt.Fprintf(out, "smoke: %s serves %s, zeta=%.2f phi=%.2f over %d slots\n",
				id, sr.Mechanism, sr.Zeta, sr.Phi, len(sr.Duty))
		}
	}
	var hr healthResponse
	if err := getJSON(base+"/v1/healthz", &hr); err != nil {
		return err
	}
	if hr.Status != "ok" || hr.Nodes != nodes {
		return fmt.Errorf("smoke: healthz reports %+v, want ok with %d nodes", hr, nodes)
	}
	// Every node ingested the same trace, so once past bootstrap the
	// plan cache must collapse the fleet to a single optimizer solve.
	if learned && (hr.PlanSolves != 1 || hr.PlanCacheHits != int64(nodes-1)) {
		return fmt.Errorf("smoke: plan cache not shared: %d solves, %d hits (want 1, %d)",
			hr.PlanSolves, hr.PlanCacheHits, nodes-1)
	}
	fmt.Fprintf(out, "smoke: healthz ok — %d nodes, %d observations, %d plan solves, %d cache hits\n",
		hr.Nodes, hr.Observations, hr.PlanSolves, hr.PlanCacheHits)
	fmt.Fprintln(out, "smoke: OK")
	return nil
}

func postJSON(url string, body []byte, v any) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	return decodeResponse(resp, v)
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return decodeResponse(resp, v)
}

func decodeResponse(resp *http.Response, v any) error {
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, data)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
