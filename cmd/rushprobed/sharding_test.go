package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rushprobe"
)

// ingestNodes drives a few distinct traffic patterns into the fleet
// over HTTP and returns the node IDs.
func ingestNodes(t *testing.T, baseURL string, nodes int) []string {
	t.Helper()
	ids := make([]string, nodes)
	var batch []rushprobe.Observation
	for n := range ids {
		ids[n] = fmt.Sprintf("node-%04d", n)
		for _, o := range traceObservations(t, "", uint64(n%5+1), 4) {
			o.Node = ids[n]
			batch = append(batch, o)
		}
	}
	body, err := json.Marshal(observeRequest{Observations: batch})
	if err != nil {
		t.Fatal(err)
	}
	resp := mustPost(t, baseURL+"/v1/observe", body)
	var or observeResponse
	if err := json.Unmarshal(readBody(t, resp), &or); err != nil {
		t.Fatal(err)
	}
	if or.Accepted != len(batch) {
		t.Fatalf("accepted %d of %d observations", or.Accepted, len(batch))
	}
	return ids
}

func TestSchedulesBatchEndpoint(t *testing.T) {
	srv := httptest.NewServer(newServer(newTestFleet(t), ""))
	defer srv.Close()
	ids := ingestNodes(t, srv.URL, 12)

	// Batch answers must match per-node fetches, in request order.
	reversed := make([]string, len(ids))
	for i, id := range ids {
		reversed[len(ids)-1-i] = id
	}
	body, _ := json.Marshal(schedulesRequest{Nodes: reversed})
	resp := mustPost(t, srv.URL+"/v1/schedules", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/schedules: HTTP %d: %s", resp.StatusCode, readBody(t, resp))
	}
	var sr schedulesResponse
	if err := json.Unmarshal(readBody(t, resp), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Schedules) != len(reversed) {
		t.Fatalf("got %d schedules for %d nodes", len(sr.Schedules), len(reversed))
	}
	for i, id := range reversed {
		single, err := http.Get(srv.URL + "/v1/schedule/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var one scheduleResponse
		if err := json.Unmarshal(readBody(t, single), &one); err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(sr.Schedules[i])
		want, _ := json.Marshal(one.Schedule)
		if !bytes.Equal(got, want) {
			t.Fatalf("batch schedule %d (%s) differs from single fetch", i, id)
		}
	}

	// Method and empty-body behavior.
	getResp, err := http.Get(srv.URL + "/v1/schedules")
	if err != nil {
		t.Fatal(err)
	}
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/schedules: HTTP %d", getResp.StatusCode)
	}
	readBody(t, getResp)
	empty := mustPost(t, srv.URL+"/v1/schedules", []byte(`{"nodes":[]}`))
	var er schedulesResponse
	if err := json.Unmarshal(readBody(t, empty), &er); err != nil {
		t.Fatal(err)
	}
	if er.Schedules == nil || len(er.Schedules) != 0 {
		t.Fatalf("empty batch returned %v", er.Schedules)
	}
}

// schedulesOf fetches a JSON-comparable view of every node's plan
// straight off the fleet.
func schedulesOf(t *testing.T, f *rushprobe.Fleet, ids []string) []byte {
	t.Helper()
	scheds, err := f.ScheduleBatch(ids)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(scheds)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// populateFleet ingests directly (no HTTP) for the snaplog unit tests.
func populateFleet(t *testing.T, f *rushprobe.Fleet, nodes int) []string {
	t.Helper()
	ids := make([]string, nodes)
	var batch []rushprobe.Observation
	for n := range ids {
		ids[n] = fmt.Sprintf("node-%04d", n)
		for _, o := range traceObservations(t, "", uint64(n%5+1), 4) {
			o.Node = ids[n]
			batch = append(batch, o)
		}
	}
	if got := f.Observe(batch); got != len(batch) {
		t.Fatalf("accepted %d of %d", got, len(batch))
	}
	return ids
}

func TestSnaplogPersistRestoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.snaplog")
	var logBuf bytes.Buffer
	logger, err := newLogger(&logBuf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}

	fa := newTestFleet(t)
	ids := populateFleet(t, fa, 60)
	want := schedulesOf(t, fa, ids)
	sa := newSnaplogStore(fa, path, logger)
	if err := sa.compact(); err != nil {
		t.Fatal(err)
	}
	if err := sa.close(); err != nil {
		t.Fatal(err)
	}

	fb := newTestFleet(t)
	sb := newSnaplogStore(fb, path, logger)
	restored, err := sb.restore()
	if err != nil {
		t.Fatal(err)
	}
	if !restored {
		t.Fatal("restore reported a fresh start with a log on disk")
	}
	if got := schedulesOf(t, fb, ids); !bytes.Equal(got, want) {
		t.Fatal("schedules differ after snaplog restore")
	}

	// A missing file is a fresh start, not an error.
	fresh := newSnaplogStore(newTestFleet(t), filepath.Join(t.TempDir(), "absent.snaplog"), logger)
	restored, err = fresh.restore()
	if err != nil || restored {
		t.Fatalf("missing log: restored=%v err=%v", restored, err)
	}
}

func TestSnaplogTornTailRecoveredLoudly(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.snaplog")
	var logBuf bytes.Buffer
	logger, err := newLogger(&logBuf, "text", "debug")
	if err != nil {
		t.Fatal(err)
	}

	fa := newTestFleet(t)
	ids := populateFleet(t, fa, 40)
	want := schedulesOf(t, fa, ids)
	sa := newSnaplogStore(fa, path, logger)
	if err := sa.compact(); err != nil {
		t.Fatal(err)
	}
	if err := sa.close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: a delta cut off halfway through.
	if _, err := fa.SetStrategy(ids[0], string(rushprobe.SNIPRH)); err != nil {
		t.Fatal(err)
	}
	var delta bytes.Buffer
	if _, err := fa.SnapshotBinaryDelta(&delta); err != nil {
		t.Fatal(err)
	}
	file, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := file.Write(delta.Bytes()[:delta.Len()/2]); err != nil {
		t.Fatal(err)
	}
	file.Close()

	fb := newTestFleet(t)
	sb := newSnaplogStore(fb, path, logger)
	restored, err := sb.restore()
	if err != nil || !restored {
		t.Fatalf("torn tail must recover the prefix: restored=%v err=%v", restored, err)
	}
	if got := schedulesOf(t, fb, ids); !bytes.Equal(got, want) {
		t.Fatal("recovered prefix does not match the pre-tear fleet")
	}
	if !strings.Contains(logBuf.String(), "torn tail") {
		t.Fatalf("torn-tail recovery was silent; log:\n%s", logBuf.String())
	}
}

func TestSnaplogCorruptionIsFatalNamingPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.snaplog")
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	fa := newTestFleet(t)
	populateFleet(t, fa, 20)
	sa := newSnaplogStore(fa, path, logger)
	if err := sa.compact(); err != nil {
		t.Fatal(err)
	}
	if err := sa.close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	sb := newSnaplogStore(newTestFleet(t), path, logger)
	_, err = sb.restore()
	if err == nil || !strings.Contains(err.Error(), path) {
		t.Fatalf("corrupt log must fail naming the path, got %v", err)
	}
}

func TestSnaplogDeltaAppendAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.snaplog")
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t)
	ids := populateFleet(t, f, 30)
	st := newSnaplogStore(f, path, logger)
	if err := st.compact(); err != nil {
		t.Fatal(err)
	}

	// Idle interval: nothing dirty, nothing written.
	if err := st.appendDelta(); err != nil {
		t.Fatal(err)
	}
	if _, _, deltas, _, _ := st.stats(); deltas != 0 {
		t.Fatalf("idle appendDelta wrote %d deltas", deltas)
	}

	// Dirty every node twice: the first delta fits under the base, the
	// second pushes the tail past it and must trigger a compaction.
	for round := 0; round < 2; round++ {
		for _, id := range ids {
			if _, err := f.SetStrategy(id, string(rushprobe.SNIPRH)); err != nil {
				t.Fatal(err)
			}
			if _, err := f.SetStrategy(id, ""); err != nil {
				t.Fatal(err)
			}
		}
		if err := st.appendDelta(); err != nil {
			t.Fatal(err)
		}
	}
	base, appended, deltas, deltaNodes, compactions := st.stats()
	if deltas < 2 || deltaNodes < int64(len(ids)) {
		t.Fatalf("delta bookkeeping off: deltas=%d nodes=%d", deltas, deltaNodes)
	}
	// One compaction from setup, one triggered when the second delta
	// pushed the tail past the base.
	if compactions != 2 {
		t.Fatalf("tail outgrew the base but compactions=%d, want 2 (base=%d appended=%d)", compactions, base, appended)
	}
	if appended != 0 {
		t.Fatalf("compaction left appended=%d", appended)
	}
	if err := st.close(); err != nil {
		t.Fatal(err)
	}

	// The compacted log restores to the same schedules.
	want := schedulesOf(t, f, ids)
	fb := newTestFleet(t)
	sb := newSnaplogStore(fb, path, logger)
	if restored, err := sb.restore(); err != nil || !restored {
		t.Fatalf("restore after compaction: %v %v", restored, err)
	}
	if got := schedulesOf(t, fb, ids); !bytes.Equal(got, want) {
		t.Fatal("schedules differ after delta+compaction cycle")
	}
}

func TestSnapshotEndpointWithSnaplog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.snaplog")
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	f := newTestFleet(t)
	srv := newServer(f, "")
	st := newSnaplogStore(f, path, logger)
	if err := st.compact(); err != nil {
		t.Fatal(err)
	}
	srv.snaplog = st
	ts := httptest.NewServer(srv)
	defer ts.Close()
	ids := ingestNodes(t, ts.URL, 10)

	resp := mustPost(t, ts.URL+"/v1/snapshot", nil)
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/snapshot: HTTP %d: %s", resp.StatusCode, body)
	}
	var snap snapshotResponse
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Path != path || snap.Nodes != len(ids) {
		t.Fatalf("snapshot response %+v", snap)
	}

	// healthz reports persistence configured; metrics expose the
	// snaplog families.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr healthResponse
	if err := json.Unmarshal(readBody(t, hresp), &hr); err != nil {
		t.Fatal(err)
	}
	if !hr.Snapshot.Configured || hr.Snapshot.Saves != 1 {
		t.Fatalf("healthz snapshot block %+v", hr.Snapshot)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	for _, fam := range []string{
		"rushprobe_snaplog_base_bytes",
		"rushprobe_snaplog_compactions_total",
		"rushprobe_fleet_dirty_nodes",
	} {
		if !strings.Contains(metrics, fam) {
			t.Fatalf("/metrics missing %s", fam)
		}
	}

	// The log written over HTTP restores.
	if err := st.close(); err != nil {
		t.Fatal(err)
	}
	fb := newTestFleet(t)
	sb := newSnaplogStore(fb, path, logger)
	if restored, err := sb.restore(); err != nil || !restored {
		t.Fatalf("restore: %v %v", restored, err)
	}
	if got, want := schedulesOf(t, fb, ids), schedulesOf(t, f, ids); !bytes.Equal(got, want) {
		t.Fatal("snaplog written via POST /v1/snapshot does not restore equivalently")
	}
}

func TestRouterModeEndToEnd(t *testing.T) {
	logger, err := newLogger(io.Discard, "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Two shard daemons, each with its own snapshot log.
	var shardURLs []string
	shardFleets := make([]*rushprobe.Fleet, 2)
	for i := range shardFleets {
		f := newTestFleet(t)
		shardFleets[i] = f
		srv := newServer(f, "")
		st := newSnaplogStore(f, filepath.Join(dir, fmt.Sprintf("shard-%d.snaplog", i)), logger)
		if err := st.compact(); err != nil {
			t.Fatal(err)
		}
		srv.snaplog = st
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		shardURLs = append(shardURLs, ts.URL)
	}

	rt, err := buildRouter(strings.Join(shardURLs, ","))
	if err != nil {
		t.Fatal(err)
	}
	router := httptest.NewServer(newRouterServer(rt, logger))
	defer router.Close()

	ids := ingestNodes(t, router.URL, 40)

	// Both shards must hold part of the fleet.
	for i, f := range shardFleets {
		if f.Stats().Nodes == 0 {
			t.Fatalf("shard %d received no nodes", i)
		}
	}

	// Router healthz merges the counters.
	hresp, err := http.Get(router.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr routerHealthResponse
	if err := json.Unmarshal(readBody(t, hresp), &hr); err != nil {
		t.Fatal(err)
	}
	if hr.Status != "ok" || hr.Nodes != len(ids) || len(hr.Shards) != 2 {
		t.Fatalf("router healthz %+v", hr)
	}

	// Batch schedules through the router match per-node fetches.
	body, _ := json.Marshal(schedulesRequest{Nodes: ids})
	resp := mustPost(t, router.URL+"/v1/schedules", body)
	var sr schedulesResponse
	if err := json.Unmarshal(readBody(t, resp), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Schedules) != len(ids) {
		t.Fatalf("router batch returned %d plans for %d nodes", len(sr.Schedules), len(ids))
	}
	for i, id := range ids[:10] {
		single, err := http.Get(router.URL + "/v1/schedule/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var one scheduleResponse
		if err := json.Unmarshal(readBody(t, single), &one); err != nil {
			t.Fatal(err)
		}
		got, _ := json.Marshal(sr.Schedules[i])
		want, _ := json.Marshal(one.Schedule)
		if !bytes.Equal(got, want) {
			t.Fatalf("router batch plan for %s differs from single fetch", id)
		}
	}

	// Strategy + profile route through.
	resp = mustPost(t, router.URL+"/v1/strategy/"+ids[0], []byte(`{"strategy":"SNIP-RH"}`))
	var strat strategyResponse
	if err := json.Unmarshal(readBody(t, resp), &strat); err != nil {
		t.Fatal(err)
	}
	if strat.Strategy != string(rushprobe.SNIPRH) {
		t.Fatalf("router strategy response %+v", strat)
	}

	// Snapshot fan-out persists every shard's log.
	resp = mustPost(t, router.URL+"/v1/snapshot", nil)
	snapBody := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("router snapshot: HTTP %d: %s", resp.StatusCode, snapBody)
	}
	var rsnap routerSnapshotResponse
	if err := json.Unmarshal(snapBody, &rsnap); err != nil {
		t.Fatal(err)
	}
	if rsnap.Shards != 2 {
		t.Fatalf("router snapshot fan-out hit %d shards", rsnap.Shards)
	}

	// Router metrics expose the routing families.
	mresp, err := http.Get(router.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(readBody(t, mresp))
	if !strings.Contains(metrics, "rushprobe_router_shards 2") ||
		!strings.Contains(metrics, "rushprobe_router_routed_observations") {
		t.Fatalf("router /metrics missing routing families:\n%s", metrics)
	}
}

func TestRunRejectsRouteWithFleetFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-route", "http://127.0.0.1:1", "-smoke"},
		{"-route", "http://127.0.0.1:1", "-snapshot", "x.json"},
		{"-route", "http://127.0.0.1:1", "-snaplog", "x.snaplog"},
	} {
		if err := run(args, io.Discard); err == nil || !strings.Contains(err.Error(), "-route is exclusive") {
			t.Fatalf("run(%v) = %v, want exclusivity error", args, err)
		}
	}
	if err := run([]string{"-route", "   ,  "}, io.Discard); err == nil || !strings.Contains(err.Error(), "no shards") {
		t.Fatalf("blank shard list accepted: %v", err)
	}
}
