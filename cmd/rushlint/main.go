// Command rushlint is the repo's static-analysis multichecker: it runs
// the internal/lint analyzer suite — detclock, floatexact, durability,
// locksafe, hotpath — over the given packages (default ./...) and exits
// non-zero when any invariant is violated.
//
// Usage:
//
//	rushlint [-checks detclock,locksafe] [-list] [packages...]
//
// Diagnostics print as file:line:col: [analyzer] message. Suppressions
// use //rushlint:allow <analyzer> — <reason> on or directly above the
// offending line; see docs/ARCHITECTURE.md "Invariants".
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"rushprobe/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rushlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "", "comma-separated analyzer names to run (default: all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *checks != "" {
		var selected []*lint.Analyzer
		for _, name := range strings.Split(*checks, ",") {
			name = strings.TrimSpace(name)
			a := lint.ByName(name)
			if a == nil {
				fmt.Fprintf(stderr, "rushlint: unknown analyzer %q\n", name)
				return 2
			}
			selected = append(selected, a)
		}
		analyzers = selected
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "rushlint:", err)
		return 2
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(stderr, "rushlint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "rushlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
