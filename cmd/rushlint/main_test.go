package main

import (
	"strings"
	"testing"
)

func TestListPrintsEveryAnalyzer(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("run -list = %d, stderr %q", code, errOut.String())
	}
	for _, name := range []string{"detclock", "floatexact", "durability", "locksafe", "hotpath"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-checks", "nosuch"}, &out, &errOut); code != 2 {
		t.Fatalf("run -checks nosuch = %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown-analyzer message", errOut.String())
	}
}

func TestBadFlagIsUsageError(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-definitely-not-a-flag"}, &out, &errOut); code != 2 {
		t.Fatalf("run with bad flag = %d, want 2", code)
	}
}
