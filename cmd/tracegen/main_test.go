package main

import (
	"bytes"
	"strings"
	"testing"

	"rushprobe/internal/contact"
	"rushprobe/internal/rng"
	"rushprobe/internal/scenario"
	"rushprobe/internal/simtime"
	"rushprobe/internal/trace"
)

func TestRunDemand(t *testing.T) {
	if err := run([]string{"-demand"}); err != nil {
		t.Fatalf("-demand: %v", err)
	}
}

func TestRunTrace(t *testing.T) {
	if err := run([]string{"-days", "1", "-seed", "2"}); err != nil {
		t.Fatalf("trace: %v", err)
	}
}

func TestRunStats(t *testing.T) {
	if err := run([]string{"-days", "2", "-stats"}); err != nil {
		t.Fatalf("-stats: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "zero days", args: []string{"-days", "0"}},
		{name: "negative days", args: []string{"-days", "-3"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

// TestTraceRoundTrip checks the full generate -> Write -> Read cycle:
// the decoded contacts must be identical to what tracegen produced.
func TestTraceRoundTrip(t *testing.T) {
	gen, err := contact.NewGenerator(scenario.Roadside(), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	contacts := gen.GenerateUntil(simtime.Instant(3 * simtime.Day))
	if len(contacts) == 0 {
		t.Fatal("generator produced no contacts")
	}
	var buf bytes.Buffer
	if err := trace.Write(&buf, contacts); err != nil {
		t.Fatal(err)
	}
	back, err := trace.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(contacts) {
		t.Fatalf("round trip lost contacts: %d -> %d", len(contacts), len(back))
	}
	for i := range contacts {
		if back[i] != contacts[i] {
			t.Fatalf("contact %d changed: %+v -> %+v", i, contacts[i], back[i])
		}
	}
}

// TestTraceReadRejectsUnsorted covers the sorted-start invariant: a
// trace whose records go backwards in time must fail to parse, so
// replays cannot silently reorder time.
func TestTraceReadRejectsUnsorted(t *testing.T) {
	csv := "start_s,length_s\n100,2\n50,2\n"
	if _, err := trace.Read(strings.NewReader(csv)); err == nil {
		t.Fatal("out-of-order trace accepted")
	} else if !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestTraceReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "foo,bar\n1,2\n",
		"bad start":       "start_s,length_s\nxx,2\n",
		"bad length":      "start_s,length_s\n1,yy\n",
		"zero length":     "start_s,length_s\n1,0\n",
		"negative length": "start_s,length_s\n1,-2\n",
	}
	for name, csv := range cases {
		if _, err := trace.Read(strings.NewReader(csv)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
