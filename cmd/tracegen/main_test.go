package main

import (
	"testing"
)

func TestRunDemand(t *testing.T) {
	if err := run([]string{"-demand"}); err != nil {
		t.Fatalf("-demand: %v", err)
	}
}

func TestRunTrace(t *testing.T) {
	if err := run([]string{"-days", "1", "-seed", "2"}); err != nil {
		t.Fatalf("trace: %v", err)
	}
}

func TestRunStats(t *testing.T) {
	if err := run([]string{"-days", "2", "-stats"}); err != nil {
		t.Fatalf("-stats: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{name: "bad flag", args: []string{"-bogus"}},
		{name: "zero days", args: []string{"-days", "0"}},
		{name: "negative days", args: []string{"-days", "-3"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}
