// Command tracegen emits synthetic contact traces and demand profiles.
//
// Usage:
//
//	tracegen -days 7 -seed 3 > trace.csv        # road-side contact trace
//	tracegen -demand                            # Fig.-3-style hourly shares
package main

import (
	"flag"
	"fmt"
	"os"

	"rushprobe/internal/contact"
	"rushprobe/internal/rng"
	"rushprobe/internal/scenario"
	"rushprobe/internal/simtime"
	"rushprobe/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	var (
		days   = fs.Int("days", 7, "days of contact trace to generate")
		seed   = fs.Uint64("seed", 1, "random seed")
		demand = fs.Bool("demand", false, "print the bimodal demand profile's hourly shares instead")
		stats  = fs.Bool("stats", false, "print per-slot statistics of the generated trace instead of CSV")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *demand {
		profile := contact.DefaultCommute()
		shares, err := contact.HourlyShares(profile, 24)
		if err != nil {
			return err
		}
		fmt.Printf("# %s\n", profile)
		fmt.Println("hour,share_pct")
		for h, s := range shares {
			fmt.Printf("%d,%.3f\n", h, 100*s)
		}
		return nil
	}
	if *days <= 0 {
		return fmt.Errorf("days must be positive, got %d", *days)
	}
	sc := scenario.Roadside()
	gen, err := contact.NewGenerator(sc, rng.New(*seed))
	if err != nil {
		return err
	}
	contacts := gen.GenerateUntil(simtime.Instant(simtime.Duration(*days) * simtime.Day))
	if *stats {
		clk, err := sc.Clock()
		if err != nil {
			return err
		}
		agg := trace.Aggregate(contacts)
		fmt.Printf("contacts: %d over %d days (%.1f/day)\n", agg.Count, *days, float64(agg.Count)/float64(*days))
		fmt.Printf("mean length: %.3f s, mean interval: %.1f s, capacity: %.1f s\n",
			agg.MeanLength, agg.MeanInterval, agg.TotalCapacity)
		fmt.Println("slot,count,capacity_s,mean_length_s")
		for _, s := range trace.Summarize(contacts, clk) {
			fmt.Printf("%d,%d,%.2f,%.3f\n", s.Slot, s.Count, s.Capacity, s.MeanLength)
		}
		return nil
	}
	return trace.Write(os.Stdout, contacts)
}
