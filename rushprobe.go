// Package rushprobe is a Go implementation of rush-hour-aware contact
// probing for opportunistic data collection in sparse wireless sensor
// networks, reproducing:
//
//	Wu, Brown, Sreenan. "Exploiting Rush Hours for Energy-Efficient
//	Contact Probing in Opportunistic Data Collection." ICDCSW 2011.
//
// A static sensor node must discover passing mobile nodes (contacts)
// while keeping its radio aggressively duty-cycled. With SNIP (sensor
// node-initiated probing), the node beacons at the start of each radio
// on-period; this package provides the three scheduling mechanisms the
// paper studies for deciding when to probe and at which duty cycle —
// SNIP-AT (always, fixed duty), SNIP-OPT (per-slot optimal plan), and
// SNIP-RH (only during learned/engineered rush hours) — together with
// the closed-form SNIP model, a two-step concave-allocation optimizer, a
// deterministic discrete-event simulator, and an experiment registry
// that regenerates every figure of the paper.
//
// # Quick start
//
//	sc := rushprobe.Roadside(rushprobe.WithZetaTarget(24))
//	report, err := rushprobe.Analyze(sc)           // closed-form (Figs. 5-6)
//	summary, err := rushprobe.Simulate(sc, rushprobe.SNIPRH) // DES (Figs. 7-8)
//
// All public entry points are deterministic for a fixed seed.
package rushprobe

import (
	"errors"
	"fmt"
	"time"

	"rushprobe/internal/analysis"
	"rushprobe/internal/contact"
	"rushprobe/internal/dist"
	"rushprobe/internal/experiments"
	"rushprobe/internal/model"
	"rushprobe/internal/scenario"
	"rushprobe/internal/sim"
	"rushprobe/internal/simtime"
	"rushprobe/internal/strategy"
)

// Mechanism names a SNIP scheduling mechanism.
type Mechanism string

// The scheduling mechanisms of the paper (§IV-§VI) plus the adaptive
// variant sketched in §VII.B.
const (
	SNIPAT         Mechanism = "SNIP-AT"
	SNIPOPT        Mechanism = "SNIP-OPT"
	SNIPRH         Mechanism = "SNIP-RH"
	SNIPAdaptiveRH Mechanism = "SNIP-RH+AT"
)

// Mechanisms returns the mechanisms in the paper's presentation order.
func Mechanisms() []Mechanism {
	return []Mechanism{SNIPAT, SNIPOPT, SNIPRH}
}

// Strategies returns the canonical names of every registered probing
// strategy, sorted. The paper's mechanisms are pre-registered; any of
// these names (or their aliases, e.g. "rh" for "SNIP-RH") is accepted
// by WithStrategy, WithFleetMechanism via Mechanism, Fleet.SetStrategy,
// and the -strategy flags of the CLIs.
func Strategies() []string { return strategy.Names() }

// StrategyDescription returns the one-line description of a registered
// strategy, or an error for unknown names.
func StrategyDescription(name string) (string, error) { return strategy.Describe(name) }

// Scenario describes a deployment: the mobility epoch and slots, the
// per-slot contact process, the radio, the probing-energy budget PhiMax,
// and the probed-capacity target ZetaTarget. Construct one with
// Roadside, Commute, or New.
type Scenario struct {
	inner *scenario.Scenario
}

// RoadsideOption customizes the canonical road-side scenario.
type RoadsideOption = scenario.RoadsideOption

// Re-exported road-side options (see the paper's §VII.A setup).
var (
	// WithBudgetFraction sets PhiMax to a fraction of the epoch
	// (the paper uses 1/1000 and 1/100).
	WithBudgetFraction = scenario.WithBudgetFraction
	// WithZetaTarget sets the probed-capacity target in seconds/epoch.
	WithZetaTarget = scenario.WithZetaTarget
	// WithFixedLengths uses the fixed-value contact process of the
	// paper's numerical analysis instead of Normal(mu, mu/10).
	WithFixedLengths = scenario.WithFixedLengths
	// WithBeaconLoss injects beacon loss for robustness studies.
	WithBeaconLoss = scenario.WithBeaconLoss
	// WithUploadRate overrides the upload throughput in bytes/second.
	WithUploadRate = scenario.WithUploadRate
	// WithContactLength overrides the mean contact length in seconds.
	WithContactLength = scenario.WithContactLength
	// WithIntervals overrides the rush-hour and off-peak mean contact
	// inter-arrival times in seconds.
	WithIntervals = scenario.WithIntervals
	// WithBufferCap bounds the sensor node's data buffer in bytes
	// (0 = unbounded); oldest data is dropped first when full.
	WithBufferCap = scenario.WithBufferCap
)

// Contention selects how the sensor node resolves several mobile nodes
// answering one beacon when contacts arrive in groups.
type Contention int

// Contention policies (§II's assumption removal).
const (
	// ContentionResolve picks the mobile node with the longest
	// remaining dwell (the default).
	ContentionResolve Contention = iota
	// ContentionRandom picks uniformly among the responders.
	ContentionRandom
	// ContentionNone lets the acks collide, wasting the beacon.
	ContentionNone
)

// WithGroupedContacts makes a fraction of contacts arrive as groups of
// two mobile nodes, resolved with the given contention policy.
func WithGroupedContacts(prob float64, policy Contention) RoadsideOption {
	return scenario.WithGroupArrivals(prob, scenario.ContentionPolicy(policy))
}

// Roadside returns the paper's §VII.A road-side wireless sensor network:
// a 24-hour epoch in 24 hourly slots, rush hours 07:00-09:00 and
// 17:00-19:00 (contact every 300 s), contacts every 1800 s elsewhere,
// 2-second contacts.
func Roadside(opts ...RoadsideOption) *Scenario {
	return &Scenario{inner: scenario.Roadside(opts...)}
}

// Commute builds a scenario from a smooth bimodal commuter demand
// profile (the shape of the paper's Figure 3): contactsPerDay encounters
// of contactLen seconds are spread over the day following the profile,
// and the busiest rushFraction of slots are marked as rush hours.
func Commute(contactsPerDay, contactLen, rushFraction float64) (*Scenario, error) {
	inner, err := contact.ScenarioFromProfile(contact.DefaultCommute(), contactsPerDay, contactLen, rushFraction)
	if err != nil {
		return nil, err
	}
	return &Scenario{inner: inner}, nil
}

// SlotSpec describes one time slot for New.
type SlotSpec struct {
	// MeanInterval is the mean time between contact arrivals in seconds;
	// zero means no contacts in the slot.
	MeanInterval float64
	// MeanLength is the mean contact length in seconds.
	MeanLength float64
	// Fixed uses degenerate (fixed-value) distributions instead of the
	// default Normal(mu, mu/10).
	Fixed bool
	// RushHour marks the slot in the engineered rush-hour mask.
	RushHour bool
}

// ScenarioOption customizes a Scenario built with New.
type ScenarioOption func(*scenario.Scenario)

// WithBudget sets the per-epoch probing-energy budget in seconds of
// radio on-time.
func WithBudget(seconds float64) ScenarioOption {
	return func(sc *scenario.Scenario) { sc.PhiMax = seconds }
}

// WithTarget sets the per-epoch probed-capacity target in seconds.
func WithTarget(seconds float64) ScenarioOption {
	return func(sc *scenario.Scenario) { sc.ZetaTarget = seconds }
}

// WithTon sets the radio on-period in seconds (default 20 ms).
func WithTon(seconds float64) ScenarioOption {
	return func(sc *scenario.Scenario) { sc.Radio.Ton = seconds }
}

// WithUpload sets the upload throughput in bytes/second.
func WithUpload(rate float64) ScenarioOption {
	return func(sc *scenario.Scenario) { sc.UploadRate = rate }
}

// WithLoss sets the beacon loss probability.
func WithLoss(p float64) ScenarioOption {
	return func(sc *scenario.Scenario) { sc.BeaconLossProb = p }
}

// New builds a custom scenario from an epoch length and per-slot
// contact processes. It returns an error when the description is not a
// valid deployment.
func New(name string, epoch time.Duration, slots []SlotSpec, opts ...ScenarioOption) (*Scenario, error) {
	inner := &scenario.Scenario{
		Name:       name,
		Epoch:      simtime.FromStd(epoch),
		Radio:      model.DefaultConfig(),
		UploadRate: scenario.DefaultUploadRate,
		Slots:      make([]scenario.Slot, len(slots)),
	}
	for i, s := range slots {
		var slot scenario.Slot
		slot.RushHour = s.RushHour
		if s.MeanInterval > 0 {
			if s.Fixed {
				slot.Interval = dist.Fixed{Value: s.MeanInterval}
				slot.Length = dist.Fixed{Value: s.MeanLength}
			} else {
				slot.Interval = dist.NormalTenth(s.MeanInterval)
				slot.Length = dist.NormalTenth(s.MeanLength)
			}
		}
		inner.Slots[i] = slot
	}
	for _, o := range opts {
		o(inner)
	}
	if err := inner.Validate(); err != nil {
		return nil, err
	}
	return &Scenario{inner: inner}, nil
}

// Name returns the scenario's label.
func (s *Scenario) Name() string { return s.inner.Name }

// TotalCapacity returns the contact capacity (seconds of contact)
// arriving per epoch.
func (s *Scenario) TotalCapacity() float64 { return s.inner.TotalCapacity() }

// RushCapacity returns the per-epoch contact capacity inside rush-hour
// slots.
func (s *Scenario) RushCapacity() float64 { return s.inner.RushCapacity() }

// ZetaTarget returns the probed-capacity target in seconds per epoch.
func (s *Scenario) ZetaTarget() float64 { return s.inner.ZetaTarget }

// PhiMax returns the probing-energy budget in seconds per epoch.
func (s *Scenario) PhiMax() float64 { return s.inner.PhiMax }

// RushMask returns the engineered rush-hour mask.
func (s *Scenario) RushMask() []bool { return s.inner.RushMask() }

// MarshalJSON serializes the scenario (including distributions).
func (s *Scenario) MarshalJSON() ([]byte, error) { return s.inner.MarshalJSON() }

// UnmarshalJSON deserializes a scenario produced by MarshalJSON.
func (s *Scenario) UnmarshalJSON(data []byte) error {
	var inner scenario.Scenario
	if err := inner.UnmarshalJSON(data); err != nil {
		return err
	}
	s.inner = &inner
	return nil
}

// Metrics are the paper's evaluation metrics for one mechanism at one
// capacity target.
type Metrics struct {
	// ZetaTarget is the requested probed capacity (s/epoch).
	ZetaTarget float64
	// Zeta is the achieved probed capacity (s/epoch).
	Zeta float64
	// Phi is the probing energy spent (radio on-time, s/epoch).
	Phi float64
	// Rho is Phi/Zeta (+Inf when nothing is probed).
	Rho float64
	// TargetMet reports Zeta >= ZetaTarget.
	TargetMet bool
}

func fromAnalysis(r analysis.MechanismResult) Metrics {
	return Metrics{
		ZetaTarget: r.ZetaTarget,
		Zeta:       r.Zeta,
		Phi:        r.Phi,
		Rho:        r.Rho,
		TargetMet:  r.TargetMet,
	}
}

// AnalysisReport compares the three mechanisms analytically.
type AnalysisReport struct {
	AT  Metrics
	OPT Metrics
	RH  Metrics
}

// Analyze evaluates all three mechanisms on the scenario using the
// closed-form SNIP model (the method behind Figures 5 and 6).
func Analyze(s *Scenario) (*AnalysisReport, error) {
	if s == nil || s.inner == nil {
		return nil, errors.New("rushprobe: nil scenario")
	}
	at, err := analysis.AT(s.inner)
	if err != nil {
		return nil, err
	}
	op, err := analysis.OPT(s.inner)
	if err != nil {
		return nil, err
	}
	rh, err := analysis.RH(s.inner)
	if err != nil {
		return nil, err
	}
	return &AnalysisReport{AT: fromAnalysis(at), OPT: fromAnalysis(op), RH: fromAnalysis(rh)}, nil
}

// Plan is a per-slot duty-cycle schedule with its analytical outcome.
type Plan struct {
	// Duty is the duty cycle per slot.
	Duty []float64
	// Zeta and Phi are the plan's expected capacity and energy.
	Zeta, Phi float64
	// TargetMet reports whether the plan reaches the scenario target.
	TargetMet bool
}

// OptimalPlan solves the SNIP-OPT two-step optimization (§V) for the
// scenario.
func OptimalPlan(s *Scenario) (*Plan, error) {
	if s == nil || s.inner == nil {
		return nil, errors.New("rushprobe: nil scenario")
	}
	p, err := analysis.OPTPlan(s.inner)
	if err != nil {
		return nil, err
	}
	return &Plan{Duty: p.Duty, Zeta: p.Zeta, Phi: p.Phi, TargetMet: p.TargetMet}, nil
}

// SimOption customizes a simulation run.
type SimOption func(*simOpts)

type simOpts struct {
	epochs        int
	epochsSet     bool
	warmup        int
	warmupSet     bool
	seed          uint64
	seedSet       bool
	shiftAtEpoch  int
	shiftBy       int
	shiftSet      bool
	parallelism   int
	strategies    []string
	nodes         int
	nodesSet      bool
	driftFraction float64
	driftEpoch    int
	driftSlots    int
	driftSet      bool
	driftDetector string
	detectorSet   bool
}

// WithEpochs sets the number of simulated epochs (default 14, the
// paper's two weeks).
func WithEpochs(n int) SimOption {
	return func(o *simOpts) {
		o.epochs = n
		o.epochsSet = true
	}
}

// WithWarmup excludes the first n epochs from the summary.
func WithWarmup(n int) SimOption {
	return func(o *simOpts) {
		o.warmup = n
		o.warmupSet = true
	}
}

// WithSeed fixes the random seed (default 1).
func WithSeed(seed uint64) SimOption {
	return func(o *simOpts) {
		o.seed = seed
		o.seedSet = true
	}
}

// WithParallelism bounds how many independent runs (replications in
// SimulateReplications, sweep points in RunExperiment) execute
// concurrently. The default (n <= 0) is GOMAXPROCS; 1 forces serial
// execution. Results are bit-identical for every setting — each run
// derives its randomness from the seed and its own index, and
// aggregation happens in index order — so parallelism is purely a
// wall-clock knob.
func WithParallelism(n int) SimOption { return func(o *simOpts) { o.parallelism = n } }

// WithStrategy selects a registered probing strategy by name or alias
// (see Strategies). In Simulate and SimulateReplications it overrides
// the mechanism argument, which lets any registered scheme — not just
// the paper's four — drive the simulation; give it at most once there.
// In RunExperiment it replaces the strategy axis of the simulation
// sweeps (fig7, fig8, ext-loss, ext-latency: one swept column per
// WithStrategy, in the order given; ext-contention: exactly one);
// experiments without a strategy axis reject it.
func WithStrategy(name string) SimOption {
	return func(o *simOpts) { o.strategies = append(o.strategies, name) }
}

// WithPatternShift displaces the whole mobility pattern by the given
// number of slots from the given epoch onward (seasonal drift).
func WithPatternShift(atEpoch, bySlots int) SimOption {
	return func(o *simOpts) {
		o.shiftAtEpoch = atEpoch
		o.shiftBy = bySlots
		o.shiftSet = true
	}
}

// WithNodes sets the population size of a SimulateFleet co-simulation
// (default 64). It applies only there; Simulate and SimulateReplications
// model a single node and reject it.
func WithNodes(n int) SimOption {
	return func(o *simOpts) {
		o.nodes = n
		o.nodesSet = true
	}
}

// WithDrift makes the given fraction of a SimulateFleet population (in
// expectation) shift its mobility pattern by bySlots slots at atEpoch —
// the fleet-scale analog of WithPatternShift. It applies only to
// SimulateFleet; the single-node entry points reject it.
func WithDrift(fraction float64, atEpoch, bySlots int) SimOption {
	return func(o *simOpts) {
		o.driftFraction = fraction
		o.driftEpoch = atEpoch
		o.driftSlots = bySlots
		o.driftSet = true
	}
}

// WithDriftDetection arms the fleet of a SimulateFleet co-simulation
// with a streaming change-point detector ("cusum" or "page-hinkley";
// see WithDriftDetector for the serving-layer equivalent): a node whose
// detector fires is relearned from scratch instead of waiting for its
// stale rush mask to decay, and the summary reports detection coverage
// and latency. It applies only to SimulateFleet; the single-node entry
// points reject it.
func WithDriftDetection(name string) SimOption {
	return func(o *simOpts) {
		o.driftDetector = name
		o.detectorSet = true
	}
}

// SimSummary is the per-epoch average outcome of a simulation run.
type SimSummary struct {
	// Mechanism is the scheduler that produced the result.
	Mechanism Mechanism
	// Epochs is the number of summarized epochs.
	Epochs int
	// Zeta, Phi and Rho are the paper's metrics (per-epoch means).
	Zeta, Phi, Rho float64
	// UploadedBytes is the mean data volume delivered per epoch.
	UploadedBytes float64
	// MeanLatency is the byte-weighted mean delivery latency in seconds
	// (sensing to upload).
	MeanLatency float64
	// DroppedBytes is the mean data discarded per epoch when the buffer
	// capacity is bounded.
	DroppedBytes float64
	// ContactsArrived and ContactsProbed are per-epoch means.
	ContactsArrived, ContactsProbed float64
	// ZetaCI95 and PhiCI95 are 95% confidence half-widths over epochs.
	ZetaCI95, PhiCI95 float64
	// PerEpochZeta is the probed capacity of each epoch, in order.
	PerEpochZeta []float64
}

// simConfig resolves the options into a simulator configuration. The
// scheduler comes from the strategy registry: the mechanism argument's
// name by default, the WithStrategy override when given.
func simConfig(s *Scenario, m Mechanism, o simOpts) (sim.Config, error) {
	if o.nodesSet || o.driftSet || o.detectorSet {
		return sim.Config{}, errors.New("rushprobe: WithNodes, WithDrift, and WithDriftDetection apply only to SimulateFleet")
	}
	name := string(m)
	switch len(o.strategies) {
	case 0:
	case 1:
		name = o.strategies[0]
	default:
		return sim.Config{}, fmt.Errorf("rushprobe: a simulation runs one strategy; got %d WithStrategy options", len(o.strategies))
	}
	factory, err := sim.StrategyFactory(s.inner, name)
	if err != nil {
		return sim.Config{}, err
	}
	cfg := sim.Config{
		Scenario:     s.inner,
		NewScheduler: factory,
		Epochs:       o.epochs,
		WarmupEpochs: o.warmup,
		Seed:         o.seed,
		Parallelism:  o.parallelism,
	}
	if o.shiftBy != 0 {
		epochLen := s.inner.Epoch
		at := simtime.Instant(simtime.Duration(o.shiftAtEpoch) * epochLen)
		by := o.shiftBy
		cfg.Shift = func(now simtime.Instant) int {
			if now.Before(at) {
				return 0
			}
			return by
		}
	}
	return cfg, nil
}

// Simulate runs the discrete-event simulation of the scenario under the
// given mechanism (the method behind Figures 7 and 8) and returns
// per-epoch averages. A single run is inherently sequential (the
// discrete-event loop is a serial dependency chain); use
// SimulateReplications to spread statistical power across cores.
func Simulate(s *Scenario, m Mechanism, opts ...SimOption) (*SimSummary, error) {
	if s == nil || s.inner == nil {
		return nil, errors.New("rushprobe: nil scenario")
	}
	o := simOpts{epochs: experiments.SimEpochs, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	cfg, err := simConfig(s, m, o)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(cfg)
	if err != nil {
		return nil, err
	}
	return newSimSummary(res), nil
}

// newSimSummary converts a simulator result into the public summary.
func newSimSummary(res *sim.Result) *SimSummary {
	perEpoch := make([]float64, len(res.Epochs))
	for i, em := range res.Epochs {
		perEpoch[i] = em.Zeta
	}
	return &SimSummary{
		Mechanism:       Mechanism(res.SchedulerName),
		Epochs:          res.Summary.Epochs,
		Zeta:            res.Summary.MeanZeta,
		Phi:             res.Summary.MeanPhi,
		Rho:             res.Summary.Rho,
		UploadedBytes:   res.Summary.MeanUploadedBytes,
		MeanLatency:     res.Summary.MeanLatency,
		DroppedBytes:    res.Summary.MeanDroppedBytes,
		ContactsArrived: res.Summary.MeanArrived,
		ContactsProbed:  res.Summary.MeanProbed,
		ZetaCI95:        res.Summary.ZetaCI95,
		PhiCI95:         res.Summary.PhiCI95,
		PerEpochZeta:    perEpoch,
	}
}

// ReplicatedSummary aggregates independent replications of one
// simulation, each run with its own derived seed.
type ReplicatedSummary struct {
	// Mechanism is the scheduler that produced the results.
	Mechanism Mechanism
	// Replications is the number of independent runs.
	Replications int
	// Zeta, Phi and Rho are across-replication means of the per-epoch
	// means (Rho = Phi/Zeta of the means).
	Zeta, Phi, Rho float64
	// ZetaCI95 and PhiCI95 are 95% confidence half-widths across
	// replications.
	ZetaCI95, PhiCI95 float64
	// Runs holds each replication's summary, in replication order.
	Runs []*SimSummary
}

// SimulateReplications runs the simulation reps times with seeds
// derived from the base seed and aggregates the outcomes. Replications
// fan out across a bounded worker pool — WithParallelism sets the
// width, defaulting to GOMAXPROCS — and the result is bit-identical to
// a serial run for any width.
func SimulateReplications(s *Scenario, m Mechanism, reps int, opts ...SimOption) (*ReplicatedSummary, error) {
	if s == nil || s.inner == nil {
		return nil, errors.New("rushprobe: nil scenario")
	}
	o := simOpts{epochs: experiments.SimEpochs, seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	cfg, err := simConfig(s, m, o)
	if err != nil {
		return nil, err
	}
	rep, err := sim.RunReplications(cfg, reps)
	if err != nil {
		return nil, err
	}
	out := &ReplicatedSummary{
		Mechanism:    Mechanism(rep.Runs[0].SchedulerName),
		Replications: len(rep.Runs),
		Zeta:         rep.MeanZeta,
		Phi:          rep.MeanPhi,
		Rho:          rep.Rho,
		ZetaCI95:     rep.ZetaCI95,
		PhiCI95:      rep.PhiCI95,
		Runs:         make([]*SimSummary, len(rep.Runs)),
	}
	for i, r := range rep.Runs {
		out.Runs[i] = newSimSummary(r)
	}
	return out, nil
}

// Table is an experiment's tabular output.
type Table struct {
	// Title describes the table.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold one value per column.
	Rows [][]float64
	// Notes carry observations about the data.
	Notes []string
}

// Text renders the table as aligned columns.
func (t *Table) Text() string { return t.internalTable().Text() }

// CSV renders the table as comma-separated values.
func (t *Table) CSV() string { return t.internalTable().CSV() }

func (t *Table) internalTable() *experiments.Table {
	return &experiments.Table{Title: t.Title, Columns: t.Columns, Rows: t.Rows, Notes: t.Notes}
}

// ExperimentIDs lists the registered experiments: fig3..fig8 reproduce
// the paper's figures; ext-* exercise the discussion and future-work
// claims. Use ExperimentDescription for each ID's one-line summary; the
// figure benchmarks in bench_test.go assert every experiment's expected
// shape.
func ExperimentIDs() []string { return experiments.IDs() }

// ExperimentDescription returns the one-line description of an
// experiment, or an error for unknown IDs.
func ExperimentDescription(id string) (string, error) {
	e, ok := experiments.Registry()[id]
	if !ok {
		return "", fmt.Errorf("rushprobe: unknown experiment %q", id)
	}
	return e.Description, nil
}

// RunExperiment regenerates one figure's data tables. Simulation-based
// experiments fan their sweep grids out across the worker pool; of the
// simulation options only WithParallelism, WithSeed, and WithStrategy
// apply here — experiments fix their own epochs, warmup, and shifts, so
// passing WithEpochs, WithWarmup, or WithPatternShift is an error
// rather than a silent no-op. WithSeed, when given, overrides the
// positional seed; WithStrategy (repeatable) replaces the strategy axis
// of the sweeps that have one. Tables are bit-identical for every
// parallelism setting.
func RunExperiment(id string, seed uint64, opts ...SimOption) ([]*Table, error) {
	e, ok := experiments.Registry()[id]
	if !ok {
		return nil, fmt.Errorf("rushprobe: unknown experiment %q (known: %v)", id, experiments.IDs())
	}
	var o simOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.epochsSet || o.warmupSet || o.shiftSet || o.nodesSet || o.driftSet {
		return nil, fmt.Errorf("rushprobe: experiment %s fixes its own epochs/warmup/shift/population; only WithSeed, WithParallelism, and WithStrategy apply", id)
	}
	if o.seedSet {
		seed = o.seed
	}
	tabs, err := e.Run(experiments.Params{Seed: seed, Parallelism: o.parallelism, Strategies: o.strategies})
	if err != nil {
		return nil, fmt.Errorf("rushprobe: experiment %s: %w", id, err)
	}
	out := make([]*Table, len(tabs))
	for i, tab := range tabs {
		out[i] = &Table{Title: tab.Title, Columns: tab.Columns, Rows: tab.Rows, Notes: tab.Notes}
	}
	return out, nil
}

// MotivationGain returns the §IV energy saving PhiAT/PhiRH for a rush
// fraction Trh/Tepoch and frequency ratio frh/fother (Figure 4).
func MotivationGain(rushFraction, freqRatio float64) (float64, error) {
	return analysis.MotivationGain(rushFraction, freqRatio)
}
