module rushprobe

go 1.22
