module rushprobe

go 1.21
