package rushprobe

import (
	"errors"
	"fmt"

	"rushprobe/internal/fleetsim"
)

// FleetEpoch is one epoch of a fleet co-simulation's convergence curve:
// the across-node means of the realized probed capacity and probing
// energy, for the closed loop and for the oracle flying the same
// contact streams.
type FleetEpoch struct {
	// Epoch is the zero-based epoch index.
	Epoch int
	// Zeta and Phi are the closed loop's fleet means (seconds/epoch).
	Zeta, Phi float64
	// OracleZeta and OraclePhi are the oracle pass's fleet means.
	OracleZeta, OraclePhi float64
	// ZetaRatio and PhiRatio are the convergence ratios Zeta/OracleZeta
	// and Phi/OraclePhi (0 when the oracle term is 0).
	ZetaRatio, PhiRatio float64
}

// FleetSimSummary is the outcome of a closed-loop fleet co-simulation.
type FleetSimSummary struct {
	// Strategy is the canonical name of the strategy the fleet served.
	Strategy string
	// Nodes and Epochs are the population size and horizon.
	Nodes, Epochs int
	// DriftNodes counts nodes whose mobility pattern shifted mid-run.
	DriftNodes int
	// DistinctPlans is how many distinct plans the fleet serves the
	// population at the end (the plan cache's collapse of near-identical
	// learned profiles).
	DistinctPlans int
	// PerEpoch is the fleet-level convergence curve.
	PerEpoch []FleetEpoch
	// Stats is the fleet's final counter state.
	Stats FleetStats
	// DriftEvents is the fleet's total detector-firing count (zero
	// without WithDriftDetection).
	DriftEvents int64
	// DetectedDriftNodes counts drifted nodes whose detector first
	// fired at or after the drift epoch; StationaryAlarms counts
	// firings on nodes whose pattern never shifted (false positives).
	DetectedDriftNodes int
	StationaryAlarms   int64
	// MeanDetectionLatency is the mean detection latency over detected
	// nodes, in epochs: a shift at the start of epoch E detected while
	// folding epoch E counts as 1. Zero when nothing was detected.
	MeanDetectionLatency float64
	// StageTimings is the per-epoch wall-clock cost of the fleet
	// interactions (ingest flushes, epoch folds, schedule fetches),
	// summed across nodes. Unlike every field above it measures the host
	// machine, so it varies run to run and is NOT part of the
	// deterministic output surface.
	StageTimings []FleetStageTiming
}

// FleetStageTiming is one epoch's wall-clock accounting of the
// co-simulation's fleet calls.
type FleetStageTiming struct {
	// Epoch is the zero-based epoch the cost is attributed to.
	Epoch int
	// IngestSeconds, AdvanceSeconds, and ScheduleSeconds are the summed
	// host-seconds all nodes spent in Observe, AdvanceEpoch, and
	// Schedule for this epoch.
	IngestSeconds, AdvanceSeconds, ScheduleSeconds float64
}

// SimulateFleet closes the loop between the simulator and the fleet
// serving layer: it builds a fleet over the base scenario, synthesizes
// a heterogeneous population of per-node ground truths (diverse
// rush-hour shapes and mobility mixes; WithDrift adds mid-run pattern
// shifts), and co-simulates them — every probed contact a node's DES
// produces feeds Fleet.Observe, and the schedule the fleet serves from
// that evidence is the plan the node flies in its next epoch. Each node
// also runs against its oracle (the same strategy's plan for its true
// scenario, over the identical contact stream), giving per-epoch
// convergence curves toward near-oracle energy and goodput.
//
// The mechanism (or a WithStrategy override) is the fleet's default
// strategy; WithNodes sizes the population; WithEpochs, WithSeed, and
// WithParallelism work as in Simulate; WithDriftDetection arms the
// fleet's streaming change-point detector and fills the summary's
// detection metrics. Output is deterministic for a fixed seed and
// bit-identical for every parallelism. WithWarmup and WithPatternShift
// do not apply (drift is a population property — use WithDrift) and
// are rejected.
func SimulateFleet(s *Scenario, m Mechanism, opts ...SimOption) (*FleetSimSummary, error) {
	if s == nil || s.inner == nil {
		return nil, errors.New("rushprobe: nil scenario")
	}
	o := simOpts{seed: 1}
	for _, opt := range opts {
		opt(&o)
	}
	if o.warmupSet || o.shiftSet {
		return nil, errors.New("rushprobe: SimulateFleet takes no WithWarmup or WithPatternShift; population drift is configured with WithDrift")
	}
	// An explicit zero must not silently become the default.
	if o.nodesSet && o.nodes < 1 {
		return nil, fmt.Errorf("rushprobe: population must be positive, got WithNodes(%d)", o.nodes)
	}
	if o.epochsSet && o.epochs < 1 {
		return nil, fmt.Errorf("rushprobe: epochs must be positive, got WithEpochs(%d)", o.epochs)
	}
	name := string(m)
	switch len(o.strategies) {
	case 0:
	case 1:
		name = o.strategies[0]
	default:
		return nil, fmt.Errorf("rushprobe: a fleet serves one default strategy; got %d WithStrategy options", len(o.strategies))
	}
	spec := fleetsim.Spec{
		Base:        s.inner,
		Nodes:       o.nodes,
		Epochs:      o.epochs,
		Strategy:    name,
		Seed:        o.seed,
		Parallelism: o.parallelism,
	}
	if o.driftSet {
		spec.DriftFraction = o.driftFraction
		spec.DriftEpoch = o.driftEpoch
		spec.DriftSlots = o.driftSlots
	}
	if o.detectorSet {
		spec.DriftDetector = o.driftDetector
	}
	res, err := fleetsim.Simulate(spec)
	if err != nil {
		return nil, err
	}
	out := &FleetSimSummary{
		Strategy:             res.Strategy,
		Nodes:                res.Nodes,
		Epochs:               res.Epochs,
		DriftNodes:           res.DriftNodes,
		DistinctPlans:        res.DistinctPlans,
		PerEpoch:             make([]FleetEpoch, len(res.PerEpoch)),
		Stats:                res.Stats,
		DriftEvents:          res.DriftEvents,
		DetectedDriftNodes:   res.DetectedDriftNodes,
		StationaryAlarms:     res.StationaryAlarms,
		MeanDetectionLatency: res.MeanDetectionLatency,
		StageTimings:         make([]FleetStageTiming, len(res.StageTimings)),
	}
	for i, st := range res.StageTimings {
		out.StageTimings[i] = FleetStageTiming{
			Epoch:           st.Epoch,
			IngestSeconds:   st.IngestSeconds,
			AdvanceSeconds:  st.AdvanceSeconds,
			ScheduleSeconds: st.ScheduleSeconds,
		}
	}
	for i, p := range res.PerEpoch {
		out.PerEpoch[i] = FleetEpoch{
			Epoch:      p.Epoch,
			Zeta:       p.Zeta,
			Phi:        p.Phi,
			OracleZeta: p.OracleZeta,
			OraclePhi:  p.OraclePhi,
			ZetaRatio:  p.ZetaRatio(),
			PhiRatio:   p.PhiRatio(),
		}
	}
	return out, nil
}
